"""Device-proximity monitoring over Reality-Mining-like streams.

Replays simulated Bluetooth proximity streams (see
``repro.datasets.reality``) and watches for meeting patterns — e.g. a
hub device near three phones, or a chain of distinct device types.
Also contrasts the two improved join engines of the paper (dominated
set cover vs skyline with early stop) on identical input.

Run with:  python examples/proximity_monitoring.py
"""

import random
import time

from repro import LabeledGraph, StreamMonitor
from repro.datasets import generate_reality_streams
from repro.datasets.queries import extract_connected_query
from repro.datasets.reality import RealityConfig


def meeting_patterns(rng: random.Random, snapshot: LabeledGraph) -> dict:
    """A hand-written hub pattern plus two patterns sampled from the data."""
    hub = LabeledGraph.from_vertices_and_edges(
        [(0, "dev0"), (1, "dev1"), (2, "dev3"), (3, "dev5")],
        [(0, 1, "near"), (0, 2, "near"), (0, 3, "near")],
    )
    patterns = {"hub-meeting": hub}
    for index in range(2):
        patterns[f"observed-{index}"] = extract_connected_query(snapshot, 4, rng)
    return patterns


def replay(method: str, patterns: dict, streams: list) -> tuple[float, int]:
    """Replay all streams under one engine; return (seconds, matches)."""
    monitor = StreamMonitor(patterns, method=method)
    for index, stream in enumerate(streams):
        monitor.add_stream(index, stream.initial)
    start = time.perf_counter()
    total_matches = 0
    for timestamp in range(len(stream.operations)):
        for index, s in enumerate(streams):
            monitor.apply(index, s.operations[timestamp])
        total_matches += len(monitor.matches())
    return time.perf_counter() - start, total_matches


def main() -> None:
    rng = random.Random(13)
    config = RealityConfig(num_devices=40)
    streams = generate_reality_streams(4, timestamps=30, seed=5, config=config)
    patterns = meeting_patterns(rng, streams[0].initial)
    print(f"monitoring {len(streams)} proximity streams for {len(patterns)} patterns\n")

    # Live alerting with the DSC engine.
    monitor = StreamMonitor(patterns, method="dsc")
    for index, stream in enumerate(streams):
        monitor.add_stream(index, stream.initial)
    previous: set = set()
    for timestamp in range(10):
        for index, stream in enumerate(streams):
            monitor.apply(index, stream.operations[timestamp])
        current = monitor.matches()
        for stream_id, pattern in sorted(current - previous):
            print(f"t={timestamp + 1}: pattern {pattern!r} appeared on stream {stream_id}")
        for stream_id, pattern in sorted(previous - current):
            print(f"t={timestamp + 1}: pattern {pattern!r} vanished from stream {stream_id}")
        previous = current

    # Engine comparison on the full replay.
    print("\nengine comparison over the full replay:")
    for method in ("nl", "dsc", "skyline"):
        seconds, matches = replay(method, patterns, streams)
        print(f"  {method:8s}: {seconds * 1000:7.1f} ms total, {matches} pair-reports")
    print("(all engines report identical pairs; they differ only in cost)")


if __name__ == "__main__":
    main()
