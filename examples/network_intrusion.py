"""Network intrusion monitoring — the paper's motivating application.

Models a set of network-traffic streams (hosts as labeled vertices,
connections as edges) and a fixed library of attack patterns derived
from domain knowledge.  The monitor reports, in real time and without
false negatives, which traffic streams might currently contain which
attack patterns; flagged pairs are then confirmed exactly.

Run with:  python examples/network_intrusion.py
"""

import random

from repro import EdgeChange, GraphChangeOperation, LabeledGraph, StreamMonitor

HOST_LABELS = ["ws", "db", "dns", "gw"]  # workstation / database / dns / gateway


def attack_patterns() -> dict:
    """Three attack shapes a security team might watch for."""
    # Port-scan fan: one workstation probing a gateway and two databases.
    scan = LabeledGraph.from_vertices_and_edges(
        [(0, "ws"), (1, "gw"), (2, "db"), (3, "db")],
        [(0, 1, "conn"), (0, 2, "conn"), (0, 3, "conn")],
    )
    # Exfiltration relay: db -> ws -> gw chain.
    relay = LabeledGraph.from_vertices_and_edges(
        [(0, "db"), (1, "ws"), (2, "gw")],
        [(0, 1, "conn"), (1, 2, "conn")],
    )
    # Lateral movement loop among workstations reaching a database.
    lateral = LabeledGraph.from_vertices_and_edges(
        [(0, "ws"), (1, "ws"), (2, "ws"), (3, "db")],
        [(0, 1, "conn"), (1, 2, "conn"), (2, 0, "conn"), (2, 3, "conn")],
    )
    return {"port-scan": scan, "exfil-relay": relay, "lateral-move": lateral}


def random_traffic(
    rng: random.Random, current: LabeledGraph, hosts: int
) -> GraphChangeOperation:
    """One timestamp of background churn: connections open and close."""
    changes = []
    existing = list(current.edges())
    if existing and rng.random() < 0.4:
        u, v, _ = rng.choice(existing)
        changes.append(EdgeChange.delete(u, v))
    proposed = set()
    for _ in range(rng.randint(1, 3)):
        u, v = rng.sample(range(hosts), 2)
        key = frozenset((u, v))
        if current.has_edge(u, v) or key in proposed:
            continue
        proposed.add(key)
        changes.append(
            EdgeChange.insert(
                u,
                v,
                "conn",
                u_label=HOST_LABELS[u % len(HOST_LABELS)],
                v_label=HOST_LABELS[v % len(HOST_LABELS)],
            )
        )
    return GraphChangeOperation(changes)


def inject_scan(
    current: LabeledGraph, attacker: int, targets: list[int]
) -> GraphChangeOperation:
    """An actual port-scan burst from one workstation."""
    return GraphChangeOperation(
        [
            EdgeChange.insert(
                attacker,
                target,
                "conn",
                u_label=HOST_LABELS[attacker % len(HOST_LABELS)],
                v_label=HOST_LABELS[target % len(HOST_LABELS)],
            )
            for target in targets
            if not current.has_edge(attacker, target)
        ]
    )


def main() -> None:
    rng = random.Random(2009)
    monitor = StreamMonitor(attack_patterns(), method="dsc")
    subnets = ["subnet-a", "subnet-b"]
    for subnet in subnets:
        monitor.add_stream(subnet)

    previous: set = set()
    for timestamp in range(1, 13):
        for subnet in subnets:
            monitor.apply(subnet, random_traffic(rng, monitor.graph(subnet), hosts=12))
        if timestamp == 6:
            # host 0 (a workstation) scans the gateway and two databases
            monitor.apply("subnet-b", inject_scan(monitor.graph("subnet-b"), 0, [3, 1, 5]))
            print(f"t={timestamp}: [injected port-scan into subnet-b]")

        flagged = monitor.matches()
        for pair in sorted(flagged - previous):
            stream_id, pattern = pair
            confirmed = pair in monitor.verified_matches({pair})
            status = "CONFIRMED" if confirmed else "possible (filter only)"
            print(f"t={timestamp}: ALERT {pattern!r} on {stream_id}: {status}")
        previous = flagged

    print("final standing alerts:", sorted(monitor.verified_matches()))


if __name__ == "__main__":
    main()
