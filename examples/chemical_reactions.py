"""Chemical reaction monitoring — the paper's second motivating example.

During a reaction the structure of a compound changes over time (bonds
break and form).  This example watches a set of reacting molecules for
the appearance of functional-group patterns (an ether bridge, a
carbonyl-adjacent amine, a three-carbon ring) and also demonstrates the
static filter-and-verify search over a molecule database.

Run with:  python examples/chemical_reactions.py
"""

import random

from repro import GraphDatabase, LabeledGraph, StreamMonitor
from repro.datasets import generate_molecule_set
from repro.graph import EdgeChange, GraphChangeOperation, diff_graphs


def functional_groups() -> dict:
    ether = LabeledGraph.from_vertices_and_edges(
        [(0, "C"), (1, "O"), (2, "C")],
        [(0, 1, "1"), (1, 2, "1")],
    )
    amide_core = LabeledGraph.from_vertices_and_edges(
        [(0, "N"), (1, "C"), (2, "O")],
        [(0, 1, "1"), (1, 2, "2")],
    )
    carbon_ring = LabeledGraph.from_vertices_and_edges(
        [(0, "C"), (1, "C"), (2, "C")],
        [(0, 1, "1"), (1, 2, "1"), (2, 0, "1")],
    )
    return {"ether": ether, "amide-core": amide_core, "c3-ring": carbon_ring}


def react(rng: random.Random, molecule: LabeledGraph) -> GraphChangeOperation:
    """One reaction step: a bond may break, another may form."""
    changes = []
    bonds = list(molecule.edges())
    if bonds and rng.random() < 0.5:
        u, v, _ = rng.choice(bonds)
        # Never orphan an atom: only break bonds on atoms with degree > 1.
        if molecule.degree(u) > 1 and molecule.degree(v) > 1:
            changes.append(EdgeChange.delete(u, v))
    atoms = list(molecule.vertices())
    if len(atoms) >= 2:
        u, v = rng.sample(atoms, 2)
        if not molecule.has_edge(u, v):
            changes.append(EdgeChange.insert(u, v, rng.choice(["1", "1", "2"])))
    return GraphChangeOperation(changes)


def main() -> None:
    rng = random.Random(7)
    patterns = functional_groups()

    # --- streaming: follow three reacting molecules --------------------
    print("## streaming reaction monitor")
    molecules = generate_molecule_set(3, mean_size=14, seed=42)
    monitor = StreamMonitor(patterns, method="skyline")
    for index, molecule in enumerate(molecules):
        monitor.add_stream(f"flask-{index}", molecule)

    for step in range(1, 9):
        for index in range(len(molecules)):
            stream_id = f"flask-{index}"
            monitor.apply(stream_id, react(rng, monitor.graph(stream_id)))
        confirmed = monitor.verified_matches()
        summary = {
            stream_id: sorted(p for s, p in confirmed if s == stream_id)
            for stream_id in monitor.stream_ids()
        }
        print(f"step {step}: {summary}")

    # --- static: search a compound library once ------------------------
    print("\n## static library search (filter-and-verify)")
    library = GraphDatabase.from_list(generate_molecule_set(60, seed=9))
    for name, pattern in patterns.items():
        candidates = library.filter_candidates(pattern)
        hits = library.search(pattern, verify=True)
        print(
            f"{name}: {len(candidates)} candidates after NPV filtering, "
            f"{len(hits)} exact matches "
            f"({len(candidates) - len(hits)} false positives pruned by VF2)"
        )
        assert hits <= candidates  # Lemma 4.2: never a false negative

    # diff_graphs shows how a reaction step looks as a change operation
    before = monitor.graph("flask-0").copy()
    monitor.apply("flask-0", react(rng, monitor.graph("flask-0")))
    delta = diff_graphs(before, monitor.graph("flask-0"))
    print(f"\nlast reaction step as a change operation: {len(delta)} edge changes")


if __name__ == "__main__":
    main()
