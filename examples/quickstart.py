"""Quickstart: monitor one evolving graph for two subgraph patterns.

Run with:  python examples/quickstart.py

Walks through the library's whole public surface in ~60 lines:
define patterns, attach a stream, feed edge changes, read the filter's
candidate pairs, and confirm them with exact verification.
"""

from repro import EdgeChange, GraphChangeOperation, LabeledGraph, StreamMonitor


def main() -> None:
    # Two query patterns (Definition 2.7's fixed pattern set).
    chain = LabeledGraph.from_vertices_and_edges(
        [(0, "A"), (1, "B"), (2, "C")],
        [(0, 1, "-"), (1, 2, "-")],
    )
    triangle = LabeledGraph.from_vertices_and_edges(
        [(0, "A"), (1, "B"), (2, "B")],
        [(0, 1, "-"), (1, 2, "-"), (2, 0, "-")],
    )
    monitor = StreamMonitor({"chain": chain, "triangle": triangle}, method="dsc")

    # One stream, starting from an empty graph.
    monitor.add_stream("feed")

    timeline = [
        GraphChangeOperation(
            [
                EdgeChange.insert(1, 2, "-", u_label="A", v_label="B"),
                EdgeChange.insert(2, 3, "-", v_label="C"),
            ]
        ),
        GraphChangeOperation([EdgeChange.insert(2, 4, "-", v_label="B")]),
        GraphChangeOperation([EdgeChange.insert(4, 1, "-")]),
        GraphChangeOperation([EdgeChange.delete(2, 3)]),
    ]

    for timestamp, operation in enumerate(timeline, start=1):
        monitor.apply("feed", operation)
        possible = sorted(query_id for _, query_id in monitor.matches())
        exact = sorted(query_id for _, query_id in monitor.verified_matches())
        graph = monitor.graph("feed")
        print(
            f"t={timestamp}: |V|={graph.num_vertices} |E|={graph.num_edges}  "
            f"possible={possible}  exact={exact}"
        )

    # The filter never misses a true match (Lemma 4.2): every exact match
    # is always inside the possible set.
    assert monitor.verified_matches() <= monitor.matches()
    print("soundness check passed: exact matches are a subset of the filter's answer")


if __name__ == "__main__":
    main()
