"""The sharded runtime must be a behavioural drop-in for the
single-process monitor: identical answers at every poll for every worker
count, lossless recovery after a worker is killed, and the documented
backpressure semantics."""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro.core.monitor import StreamMonitor
from repro.datasets.stream_gen import synthesize_stream
from repro.graph import EdgeChange, GraphChangeOperation
from repro.runtime import (
    POLICIES,
    ShardRouter,
    ShardedMonitor,
    WorkerCrashed,
    WorkerDied,
    stable_hash,
)

from .conftest import random_labeled_graph

ENGINE_METHODS = ("nl", "dsc", "skyline", "matrix")


def small_queries(rng: random.Random, count: int = 3) -> dict:
    return {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(count)
    }


def small_streams(rng: random.Random, count: int = 3, timestamps: int = 5) -> dict:
    streams = {}
    for i in range(count):
        base = random_labeled_graph(rng, rng.randint(4, 7), extra_edges=2)
        streams[f"s{i}"] = synthesize_stream(
            base, 0.3, 0.2, timestamps, rng, all_pairs=True, name=f"s{i}"
        )
    return streams


def drive_both(sharded: ShardedMonitor, streams: dict) -> None:
    """Register streams and replay, asserting answer equality against a
    freshly built in-process oracle at every timestamp."""
    oracle = StreamMonitor(
        sharded.spec.queries,
        method=sharded.spec.method,
        depth_limit=sharded.spec.depth_limit,
    )
    for stream_id, stream in streams.items():
        sharded.add_stream(stream_id, stream.initial)
        oracle.add_stream(stream_id, stream.initial)
    assert sharded.matches() == oracle.matches()
    horizon = min(len(stream.operations) for stream in streams.values())
    for t in range(horizon):
        for stream_id, stream in streams.items():
            sharded.apply(stream_id, stream.operations[t])
            oracle.apply(stream_id, stream.operations[t])
        assert sharded.matches() == oracle.matches(), f"diverged at t={t + 1}"


# ----------------------------------------------------------------------
# consistent-hash router
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_deterministic_across_instances(self):
        keys = [f"stream-{i}" for i in range(50)]
        a, b = ShardRouter(4), ShardRouter(4)
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_stable_hash_is_process_independent(self):
        # blake2b, not the salted builtin: fixed expectation pins it.
        assert stable_hash("x") == stable_hash("x")
        assert stable_hash("x") != stable_hash("y")
        assert stable_hash(1) != stable_hash("1")  # type-tagged

    def test_every_shard_used(self):
        router = ShardRouter(4)
        shards = {router.shard_for(f"stream-{i}") for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_shard_in_range(self):
        router = ShardRouter(3)
        for i in range(100):
            assert 0 <= router.shard_for(i) < 3

    def test_consistent_hashing_limits_movement(self):
        keys = [f"stream-{i}" for i in range(300)]
        four, five = ShardRouter(4), ShardRouter(5)
        moved = sum(1 for k in keys if four.shard_for(k) != five.shard_for(k))
        # Naive modulo hashing moves ~80% of keys on 4 -> 5; the ring
        # should move roughly 1/5 and certainly far less than half.
        assert moved < len(keys) * 0.5

    def test_assignment_covers_all_keys(self):
        router = ShardRouter(2)
        keys = [f"s{i}" for i in range(20)]
        assignment = router.assignment(keys)
        assert sorted(assignment) == sorted(keys)
        assert all(shard in (0, 1) for shard in assignment.values())
        assert all(router.shard_for(k) == assignment[k] for k in keys)


# ----------------------------------------------------------------------
# answer equivalence
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_matches_equal_single_process_at_every_poll(self, workers):
        rng = random.Random(100 + workers)
        queries = small_queries(rng)
        streams = small_streams(rng)
        with ShardedMonitor(queries, method="dsc", num_workers=workers) as sharded:
            drive_both(sharded, streams)

    @pytest.mark.parametrize("method", ENGINE_METHODS)
    def test_every_engine_method(self, method):
        rng = random.Random(40 + ENGINE_METHODS.index(method))
        queries = small_queries(rng)
        streams = small_streams(rng, count=2, timestamps=4)
        with ShardedMonitor(queries, method=method, num_workers=2) as sharded:
            drive_both(sharded, streams)

    def test_events_match_single_process(self):
        rng = random.Random(7)
        queries = small_queries(rng)
        streams = small_streams(rng)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            assert sharded.events() == oracle.events()
            horizon = min(len(s.operations) for s in streams.values())
            for t in range(horizon):
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                    oracle.apply(stream_id, stream.operations[t])
                assert sharded.events() == oracle.events(), f"diverged at t={t + 1}"

    def test_remove_stream_drops_its_pairs(self):
        rng = random.Random(13)
        queries = small_queries(rng)
        streams = small_streams(rng, count=2, timestamps=2)
        with ShardedMonitor(queries, num_workers=2) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
            sharded.remove_stream("s0")
            assert all(s != "s0" for s, _ in sharded.matches())
            assert sharded.stream_ids() == ["s1"]


# ----------------------------------------------------------------------
# lifecycle and error surface
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_duplicate_stream_rejected(self):
        rng = random.Random(1)
        with ShardedMonitor(small_queries(rng), num_workers=2) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 3))
            with pytest.raises(ValueError):
                sharded.add_stream("s0", random_labeled_graph(rng, 3))

    def test_apply_to_unknown_stream_rejected(self):
        rng = random.Random(2)
        with ShardedMonitor(small_queries(rng), num_workers=1) as sharded:
            with pytest.raises(KeyError):
                sharded.apply("ghost", EdgeChange.insert(0, 1, "-", "A", "B"))

    def test_closed_monitor_rejects_calls(self):
        rng = random.Random(3)
        sharded = ShardedMonitor(small_queries(rng), num_workers=1)
        sharded.close()
        sharded.close()  # idempotent
        with pytest.raises(RuntimeError):
            sharded.matches()

    def test_invalid_configuration_rejected(self):
        rng = random.Random(4)
        queries = small_queries(rng)
        with pytest.raises(ValueError):
            ShardedMonitor(queries, num_workers=0)
        with pytest.raises(ValueError):
            ShardedMonitor(queries, backpressure="yolo")
        with pytest.raises(ValueError):
            ShardedMonitor(queries, checkpoint_every=5)  # no checkpoint_dir

    def test_worker_exception_surfaces_with_traceback(self):
        rng = random.Random(5)
        with ShardedMonitor(
            small_queries(rng), num_workers=1, auto_recover=False
        ) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 3))
            sharded.apply("s0", EdgeChange.insert(100, 101, "-", "A", "B"))
            # Duplicate insertion makes the worker raise GraphError.
            sharded.apply("s0", EdgeChange.insert(100, 101, "-", "A", "B"))
            with pytest.raises((WorkerCrashed, WorkerDied)):
                sharded.matches()

    def test_stats_shape(self):
        rng = random.Random(6)
        with ShardedMonitor(small_queries(rng), num_workers=2) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 4))
            sharded.apply("s0", EdgeChange.insert("a", "b", "-", "A", "B"))
            stats = sharded.stats()
        assert stats["num_workers"] == 2
        assert stats["num_streams"] == 1
        assert stats["backpressure"]["policy"] == "block"
        assert stats["backpressure"]["accepted_batches"] == 1
        assert set(stats["workers"]) == {0, 1}
        assert stats["merged_counters"]["batches"] == 1
        assert stats["recovery"] == {
            "checkpoints": 0,
            "recoveries": 0,
            "replayed_commands": 0,
        }


# ----------------------------------------------------------------------
# backpressure policies
# ----------------------------------------------------------------------
def _pause_worker(sharded: ShardedMonitor, shard: int) -> int:
    pid = sharded.worker_pids()[shard]
    assert pid is not None
    os.kill(pid, signal.SIGSTOP)
    return pid


class TestBackpressure:
    def test_policies_constant(self):
        assert POLICIES == ("block", "drop", "spill")

    def test_drop_counts_rejected_updates(self):
        rng = random.Random(21)
        queries = small_queries(rng)
        with ShardedMonitor(
            queries, num_workers=1, queue_capacity=1, backpressure="drop"
        ) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 4))
            pid = _pause_worker(sharded, 0)
            try:
                results = [
                    sharded.apply(
                        "s0", EdgeChange.insert(50 + i, 60 + i, "-", "A", "B")
                    )
                    for i in range(6)
                ]
            finally:
                os.kill(pid, signal.SIGCONT)
            assert not all(results)
            stats = sharded.stats()
            assert stats["backpressure"]["dropped"] >= 1
            assert stats["backpressure"]["dropped"] == results.count(False)

    def test_spill_is_lossless(self):
        rng = random.Random(22)
        queries = small_queries(rng)
        streams = small_streams(rng, count=2, timestamps=4)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(
            queries, num_workers=2, queue_capacity=1, backpressure="spill"
        ) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            pids = [_pause_worker(sharded, shard) for shard in (0, 1)]
            try:
                horizon = min(len(s.operations) for s in streams.values())
                for t in range(horizon):
                    for stream_id, stream in streams.items():
                        assert sharded.apply(stream_id, stream.operations[t])
                        oracle.apply(stream_id, stream.operations[t])
            finally:
                for pid in pids:
                    os.kill(pid, signal.SIGCONT)
            # The poll barrier drains every parked command first.
            assert sharded.matches() == oracle.matches()
            stats = sharded.stats()
            assert stats["backpressure"]["spilled"] >= 1
            assert stats["backpressure"]["parked"] == 0
            assert stats["backpressure"]["dropped"] == 0

    def test_deep_spill_drains_fully_once_inbox_has_room(self):
        """Regression: a deep spill backlog must drain completely on
        the next submission when the inbox has capacity — not one
        envelope per tick, which would starve a recovered shard for as
        many ticks as the backlog is deep."""
        rng = random.Random(24)
        queries = small_queries(rng)
        with ShardedMonitor(
            queries, num_workers=1, queue_capacity=8, backpressure="spill"
        ) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 4))
            pid = _pause_worker(sharded, 0)
            try:
                # Fill the inbox, then park a backlog behind it.
                for i in range(14):
                    assert sharded.apply(
                        "s0", EdgeChange.insert(200 + i, 300 + i, "-", "A", "B")
                    )
                assert len(sharded._spill[0]) >= 4
            finally:
                os.kill(pid, signal.SIGCONT)
            deadline = time.monotonic() + 10
            while sharded.inbox_depths()[0] > 0:
                assert time.monotonic() < deadline, "worker never drained inbox"
                time.sleep(0.01)
            assert len(sharded._spill[0]) >= 4  # still parked: no tick yet
            # One submission; the whole backlog fits the empty inbox.
            assert sharded.apply("s0", EdgeChange.insert(900, 901, "-", "A", "B"))
            assert len(sharded._spill[0]) == 0
            assert sharded.stats()["backpressure"]["parked"] == 0

    def test_block_is_lossless_under_tiny_queue(self):
        rng = random.Random(23)
        queries = small_queries(rng)
        streams = small_streams(rng, count=2, timestamps=3)
        with ShardedMonitor(
            queries, num_workers=2, queue_capacity=1, backpressure="block"
        ) as sharded:
            drive_both(sharded, streams)
            assert sharded.stats()["backpressure"]["dropped"] == 0


# ----------------------------------------------------------------------
# checkpointing and recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_kill_mid_replay_no_false_negatives(self, tmp_path):
        rng = random.Random(31)
        queries = small_queries(rng)
        streams = small_streams(rng, count=3, timestamps=6)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(
            queries,
            method="dsc",
            num_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
        ) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            horizon = min(len(s.operations) for s in streams.values())
            kill_at = horizon // 2
            for t in range(horizon):
                if t == kill_at:
                    sharded.checkpoint()
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                    oracle.apply(stream_id, stream.operations[t])
                if t == kill_at:
                    victim = sharded.worker_pids()[0]
                    os.kill(victim, signal.SIGKILL)
                    # Give the kernel a moment to reap it so liveness
                    # checks observe the death promptly.
                    time.sleep(0.05)
            assert sharded.matches() == oracle.matches()
            summary = sharded.recovery_log.summary()
            assert summary["recoveries"] >= 1
            assert summary["checkpoints"] == 2  # one per shard
            assert summary["replayed_commands"] >= 1

    def test_recover_without_checkpoint_replays_from_birth(self):
        rng = random.Random(32)
        queries = small_queries(rng)
        streams = small_streams(rng, count=2, timestamps=3)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(queries, num_workers=1) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            for t in range(min(len(s.operations) for s in streams.values())):
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                    oracle.apply(stream_id, stream.operations[t])
            os.kill(sharded.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.05)
            assert sharded.matches() == oracle.matches()
            assert sharded.recovery_log.recoveries == 1

    def test_recover_dead_respawns_and_preserves_answers(self, tmp_path):
        rng = random.Random(33)
        queries = small_queries(rng)
        with ShardedMonitor(
            queries, num_workers=2, checkpoint_dir=tmp_path / "ckpt"
        ) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 5, extra_edges=2))
            before = sharded.matches()
            sharded.checkpoint()
            for pid in sharded.worker_pids().values():
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.05)
            recovered = sharded.recover_dead()
            assert sorted(recovered) == [0, 1]
            assert sharded.matches() == before

    def test_auto_checkpoint_cadence(self, tmp_path):
        rng = random.Random(34)
        queries = small_queries(rng)
        with ShardedMonitor(
            queries,
            num_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=2,
        ) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 4))
            for i in range(4):
                sharded.apply("s0", EdgeChange.insert(70 + i, 80 + i, "-", "A", "B"))
            # 4 accepted batches / cadence 2 = 2 rounds x 2 shards.
            assert sharded.recovery_log.checkpoints == 4
            assert (tmp_path / "ckpt" / "shard_0" / "LATEST").exists()

    def test_checkpoint_requires_directory(self):
        rng = random.Random(35)
        with ShardedMonitor(small_queries(rng), num_workers=1) as sharded:
            with pytest.raises(RuntimeError):
                sharded.checkpoint()


# ----------------------------------------------------------------------
# parity with the library quickstart
# ----------------------------------------------------------------------
def test_quickstart_parity():
    """The README quickstart, verbatim, against the runtime facade."""
    from repro import LabeledGraph

    pattern = LabeledGraph.from_vertices_and_edges(
        [(0, "A"), (1, "B"), (2, "C")], [(0, 1, "-"), (1, 2, "-")]
    )
    with ShardedMonitor({"triangle-feed": pattern}, method="dsc", num_workers=2) as m:
        m.add_stream("net0")
        m.apply("net0", EdgeChange.insert(7, 8, "-", "A", "B"))
        m.apply("net0", EdgeChange.insert(8, 9, "-", None, "C"))
        assert m.matches() == {("net0", "triangle-feed")}
