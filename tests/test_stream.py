"""Unit tests for graph streams (Definition 2.6)."""

import pytest

from repro.graph import EdgeChange, GraphChangeOperation, GraphStream, LabeledGraph


def make_stream() -> GraphStream:
    initial = LabeledGraph.from_vertices_and_edges([(1, "A"), (2, "B")], [(1, 2, "x")])
    return GraphStream(
        initial,
        [
            GraphChangeOperation([EdgeChange.insert(2, 3, "y", v_label="C")]),
            GraphChangeOperation([EdgeChange.delete(1, 2)]),
            GraphChangeOperation([EdgeChange.insert(3, 4, "x", v_label="D")]),
        ],
        name="s",
    )


class TestGraphStream:
    def test_length_counts_timestamp_zero(self):
        assert len(make_stream()) == 4

    def test_graph_at_zero_is_initial_copy(self):
        stream = make_stream()
        graph = stream.graph_at(0)
        assert graph == stream.initial
        graph.remove_edge(1, 2)
        assert stream.initial.has_edge(1, 2)  # copies, not views

    def test_graph_at_applies_prefix(self):
        stream = make_stream()
        g2 = stream.graph_at(2)
        assert g2.has_edge(2, 3)
        assert not g2.has_edge(1, 2)
        assert not g2.has_vertex(1)  # isolated vertex dropped

    def test_graph_at_out_of_range(self):
        with pytest.raises(IndexError):
            make_stream().graph_at(4)
        with pytest.raises(IndexError):
            make_stream().graph_at(-1)

    def test_replay_matches_graph_at(self):
        stream = make_stream()
        for timestamp, cursor in stream.replay():
            assert cursor == stream.graph_at(timestamp)

    def test_final_graph(self):
        assert make_stream().final_graph() == make_stream().graph_at(3)

    def test_total_changes(self):
        assert make_stream().total_changes() == 3

    def test_append(self):
        stream = make_stream()
        stream.append(GraphChangeOperation([EdgeChange.delete(2, 3)]))
        assert len(stream) == 5

    def test_truncated(self):
        stream = make_stream()
        short = stream.truncated(2)
        assert len(short) == 2
        assert short.final_graph() == stream.graph_at(1)
        assert len(stream) == 4  # original untouched

    def test_truncated_rejects_zero(self):
        with pytest.raises(ValueError):
            make_stream().truncated(0)
