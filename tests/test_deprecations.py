"""``poll_events()`` is a deprecated alias for ``events()``.

Three contracts: the alias returns exactly what ``events()`` would have
returned (same diff-since-last-poll semantics, so calling either
consumes the same snapshot), it raises ``DeprecationWarning``, and the
warning fires once per class per process — a hot polling loop must not
spam stderr.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import monitor as monitor_module
from repro.core.monitor import StreamMonitor
from repro.core.window import SlidingWindowMonitor
from repro.graph import EdgeChange, LabeledGraph
from repro.runtime import ShardedMonitor


@pytest.fixture(autouse=True)
def reset_warn_once():
    """Each test observes the warn-once behaviour from a clean slate."""
    saved = set(monitor_module._POLL_EVENTS_WARNED)
    monitor_module._POLL_EVENTS_WARNED.clear()
    yield
    monitor_module._POLL_EVENTS_WARNED.clear()
    monitor_module._POLL_EVENTS_WARNED.update(saved)


def edge_query() -> LabeledGraph:
    return LabeledGraph.from_vertices_and_edges([(0, "A"), (1, "B")], [(0, 1, "x")])


def fresh_monitor() -> StreamMonitor:
    monitor = StreamMonitor({"q0": edge_query()})
    monitor.add_stream("s0")
    return monitor


class TestStreamMonitor:
    def test_same_events_as_events(self):
        plain, aliased = fresh_monitor(), fresh_monitor()
        change = EdgeChange.insert(1, 2, "x", "A", "B")
        plain.apply("s0", change)
        aliased.apply("s0", change)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert aliased.poll_events() == plain.events()
            # Both consumed the snapshot: a second poll is empty.
            assert aliased.poll_events() == plain.events() == []

    def test_warns_deprecation(self):
        monitor = fresh_monitor()
        with pytest.warns(DeprecationWarning, match=r"poll_events\(\) is deprecated"):
            monitor.poll_events()

    def test_warns_once_per_class(self):
        monitor = fresh_monitor()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            monitor.poll_events()
            monitor.poll_events()
            fresh_monitor().poll_events()  # same class, still silent
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "StreamMonitor.poll_events()" in str(deprecations[0].message)

    def test_events_does_not_warn(self):
        monitor = fresh_monitor()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            monitor.events()
        assert [w for w in caught if w.category is DeprecationWarning] == []


class TestSlidingWindowMonitor:
    def test_alias_equivalent_and_warns_with_own_class_name(self):
        windowed = SlidingWindowMonitor({"q0": edge_query()}, window=4)
        windowed.add_stream("s0")
        windowed.observe("s0", 1, 2, "x", "A", "B")
        with pytest.warns(DeprecationWarning, match="SlidingWindowMonitor"):
            events = windowed.poll_events()
        assert {(e.stream_id, e.query_id) for e in events} == {("s0", "q0")}
        assert windowed.events() == []  # alias consumed the snapshot

    def test_warn_once_is_per_class_not_global(self):
        monitor = fresh_monitor()
        windowed = SlidingWindowMonitor({"q0": edge_query()}, window=4)
        windowed.add_stream("s0")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            monitor.poll_events()
            windowed.poll_events()
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2


class TestShardedMonitor:
    def test_alias_equivalent_and_warns(self):
        with ShardedMonitor({"q0": edge_query()}, num_workers=1) as sharded:
            sharded.add_stream("s0")
            sharded.apply("s0", EdgeChange.insert(1, 2, "x", "A", "B"))
            with pytest.warns(DeprecationWarning, match="ShardedMonitor"):
                events = sharded.poll_events()
            assert {(e.stream_id, e.query_id) for e in events} == {("s0", "q0")}
            assert sharded.events() == []
