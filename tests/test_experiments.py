"""Integration tests for the experiment harness at smoke scale.

These replay every figure driver end-to-end and check the qualitative
shapes the paper reports (where the smoke scale is large enough to show
them) plus structural invariants of the harness itself.
"""

import pytest

from repro.experiments import (
    ALL_FIGURES,
    ENGINE_METHODS,
    SMOKE,
    PROFILES,
    build_aids_workload,
    build_reality_stream_workload,
    build_synthetic_stream_workload,
    get_scale,
    run_static_method,
    run_stream_method,
)
from repro.experiments.reporting import FigureResult


class TestScaleProfiles:
    def test_profiles_resolve(self):
        for name in PROFILES:
            assert get_scale(name).name == name

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"


class TestWorkloads:
    def test_static_workload_shape(self):
        workload = build_aids_workload(SMOKE)
        assert len(workload.graphs) == SMOKE.static_db_size
        assert set(workload.query_sets) == set(SMOKE.static_query_sizes)
        for queries in workload.query_sets.values():
            assert len(queries) == SMOKE.static_queries_per_set

    def test_stream_workload_shape(self):
        workload = build_synthetic_stream_workload(SMOKE, "dense")
        assert len(workload.queries) == SMOKE.syn_num_queries
        assert len(workload.streams) == SMOKE.syn_num_streams
        assert workload.timestamps == SMOKE.syn_timestamps

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            build_synthetic_stream_workload(SMOKE, "medium")

    def test_limited_restriction(self):
        workload = build_synthetic_stream_workload(SMOKE, "sparse")
        limited = workload.limited(num_queries=2, num_streams=3, timestamps=3)
        assert len(limited.queries) == 2
        assert len(limited.streams) == 3
        assert limited.timestamps == 3

    def test_reality_workload(self):
        workload = build_reality_stream_workload(SMOKE)
        assert len(workload.queries) == SMOKE.real_num_queries
        assert all(q.is_connected() for q in workload.queries.values())


class TestRunners:
    def test_engine_runner_fields(self):
        workload = build_synthetic_stream_workload(SMOKE, "sparse").limited(timestamps=4)
        result = run_stream_method(workload, "dsc", SMOKE)
        assert result.method == "dsc"
        assert result.timestamps == 3  # 4 timestamps = 3 operations
        assert 0.0 <= result.candidate_ratio <= 1.0
        assert len(result.candidates_per_timestamp) == result.timestamps
        assert result.mean_join_ms_per_timestamp >= 0.0

    def test_engines_report_identical_candidates(self):
        workload = build_synthetic_stream_workload(SMOKE, "dense").limited(timestamps=4)
        series = {
            method: run_stream_method(workload, method, SMOKE).candidates_per_timestamp
            for method in ENGINE_METHODS
        }
        assert len(set(series.values())) == 1

    def test_ratio_over_window(self):
        workload = build_synthetic_stream_workload(SMOKE, "sparse").limited(timestamps=4)
        result = run_stream_method(workload, "dsc", SMOKE)
        assert result.ratio_over(result.timestamps) == pytest.approx(result.candidate_ratio)

    def test_unknown_method_rejected(self):
        workload = build_synthetic_stream_workload(SMOKE, "sparse").limited(timestamps=2)
        with pytest.raises(ValueError):
            run_stream_method(workload, "magic", SMOKE)

    def test_static_runner(self):
        workload = build_aids_workload(SMOKE)
        rows = run_static_method(workload, "npv", SMOKE)
        assert [row.query_size for row in rows] == sorted(SMOKE.static_query_sizes)
        assert all(0.0 <= row.candidate_ratio <= 1.0 for row in rows)

    def test_static_unknown_method(self):
        workload = build_aids_workload(SMOKE)
        with pytest.raises(ValueError):
            run_static_method(workload, "magic", SMOKE)


class TestBaselineSoundness:
    """Every stream method must report a superset of the exact answers."""

    @pytest.mark.parametrize("method", ("dsc", "ggrep", "gindex2"))
    def test_no_false_negatives_on_replay(self, method):
        from repro.graph.operations import apply_operation
        from repro.isomorphism import SubgraphMatcher

        workload = build_synthetic_stream_workload(SMOKE, "dense").limited(
            num_queries=3, num_streams=3, timestamps=3
        )
        result = run_stream_method(workload, method, SMOKE)
        mirrors = {sid: s.initial.copy() for sid, s in workload.streams.items()}
        for t in range(result.timestamps):
            truth = 0
            for sid, stream in workload.streams.items():
                apply_operation(mirrors[sid], stream.operations[t])
                matcher = SubgraphMatcher(mirrors[sid])
                truth += sum(
                    1 for q in workload.queries.values() if matcher.is_subgraph(q)
                )
            assert result.candidates_per_timestamp[t] >= truth


class TestFigureDrivers:
    @pytest.mark.parametrize("figure", sorted(ALL_FIGURES))
    def test_driver_runs_and_renders(self, figure):
        result = ALL_FIGURES[figure].run(SMOKE)
        assert isinstance(result, FigureResult)
        assert result.rows
        rendered = result.render()
        assert result.figure_id in rendered

    def test_fig12_depth_monotone(self):
        result = ALL_FIGURES["fig12"].run(SMOKE)
        for dataset in {row["dataset"] for row in result.rows}:
            series = result.series("depth", "candidate_ratio", dataset=dataset)
            ratios = [ratio for _, ratio in sorted(series)]
            assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))

    def test_fig13_filters_sound_ordering(self):
        result = ALL_FIGURES["fig13"].run(SMOKE)
        # candidate ratios shrink (weakly) as queries grow, per method
        for dataset in {row["dataset"] for row in result.rows}:
            for method in {row["method"] for row in result.rows}:
                series = result.series(
                    "query_size", "candidate_ratio", dataset=dataset, method=method
                )
                sizes_sorted = sorted(series)
                assert sizes_sorted[0][1] >= sizes_sorted[-1][1] - 0.05

    def test_ablation_a1_branch_subset(self):
        result = ALL_FIGURES["ablation_a1"].run(SMOKE)
        by_filter = {row["filter"]: row for row in result.rows}
        assert (
            by_filter["branch compatibility"]["candidate_ratio"]
            <= by_filter["NPV dominance"]["candidate_ratio"] + 1e-9
        )

    def test_ablation_a2_finer_scheme_not_weaker(self):
        result = ALL_FIGURES["ablation_a2"].run(SMOKE)
        paper = {
            row["query_size"]: row["candidate_ratio"]
            for row in result.rows
            if row["scheme"].startswith("paper")
        }
        finer = {
            row["query_size"]: row["candidate_ratio"]
            for row in result.rows
            if not row["scheme"].startswith("paper")
        }
        for size, ratio in finer.items():
            assert ratio <= paper[size] + 1e-9

    def test_ablation_a3_incremental_wins(self):
        result = ALL_FIGURES["ablation_a3"].run(SMOKE)
        by_strategy = {row["strategy"]: row for row in result.rows}
        assert (
            by_strategy["incremental"]["avg_time_ms"]
            < by_strategy["full rebuild"]["avg_time_ms"]
        )
        assert (
            by_strategy["incremental"]["tree_nodes_touched"]
            < by_strategy["full rebuild"]["tree_nodes_touched"]
        )


class TestReporting:
    def test_table_rendering(self):
        result = FigureResult("F", "title")
        result.add(a=1, b=0.123456)
        result.add(a="xyz", c=True)
        table = result.format_table()
        assert "a" in table and "b" in table and "c" in table
        assert "0.123" in table
        assert "(no rows)" in FigureResult("F", "t").format_table()

    def test_series_extraction(self):
        result = FigureResult("F", "title")
        result.add(x=1, y=10, group="g1")
        result.add(x=2, y=20, group="g1")
        result.add(x=1, y=99, group="g2")
        assert result.series("x", "y", group="g1") == [(1, 10), (2, 20)]


class TestExports:
    def _result(self):
        result = FigureResult("Fig X", "demo title")
        result.add(method="a", value=1.5)
        result.add(method="b", value=2, extra="note")
        result.notes.append("a note")
        return result

    def test_csv_round_trip(self):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(self._result().to_csv())))
        assert rows[0]["method"] == "a"
        assert rows[1]["extra"] == "note"

    def test_json_structure(self):
        import json

        doc = json.loads(self._result().to_json())
        assert doc["figure_id"] == "Fig X"
        assert len(doc["rows"]) == 2
        assert doc["notes"] == ["a note"]

    def test_markdown_table(self):
        text = self._result().to_markdown()
        assert text.startswith("## Fig X — demo title")
        assert "| method | value | extra |" in text
        assert "*a note*" in text

    def test_save_by_suffix(self, tmp_path):
        result = self._result()
        for suffix, probe in ((".csv", "method,"), (".json", '"figure_id"'), (".md", "## Fig X"), (".txt", "== Fig X")):
            path = tmp_path / f"r{suffix}"
            result.save(path)
            assert probe in path.read_text()


class TestPaperProfile:
    """The 'paper' profile must encode the published sizes exactly."""

    def test_published_sizes(self):
        paper = get_scale("paper")
        assert paper.static_db_size == 10_000
        assert paper.static_queries_per_set == 1_000
        assert paper.static_query_sizes == (4, 8, 12, 16, 20, 24)
        assert paper.syn_num_queries == paper.syn_num_streams == 70
        assert paper.syn_timestamps == 1_000
        assert paper.real_num_queries == paper.real_num_streams == 25
        assert paper.real_num_devices == 97
        assert paper.gindex1_static_max_edges == 10

    def test_all_profiles_share_query_size_grid_prefix(self):
        default = get_scale("default")
        paper = get_scale("paper")
        assert set(get_scale("smoke").static_query_sizes) <= set(paper.static_query_sizes)
        assert default.static_query_sizes == paper.static_query_sizes


class TestWorkloadEdgeCases:
    def test_limited_beyond_available_is_clamped(self):
        workload = build_synthetic_stream_workload(SMOKE, "sparse")
        limited = workload.limited(num_queries=999, num_streams=999)
        assert len(limited.queries) == len(workload.queries)
        assert len(limited.streams) == len(workload.streams)

    def test_workloads_are_deterministic(self):
        first = build_synthetic_stream_workload(SMOKE, "dense", seed=5)
        second = build_synthetic_stream_workload(SMOKE, "dense", seed=5)
        assert first.queries.keys() == second.queries.keys()
        for query_id in first.queries:
            assert first.queries[query_id] == second.queries[query_id]
        for stream_id in first.streams:
            assert (
                first.streams[stream_id].initial == second.streams[stream_id].initial
            )
            assert (
                first.streams[stream_id].operations
                == second.streams[stream_id].operations
            )
