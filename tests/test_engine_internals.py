"""White-box tests of the join engines' internal structures: the DSC
counters and the skyline engine's per-dimension statistics must match
their definitions after arbitrary churn."""

import random

from repro.graph import LabeledGraph
from repro.join import QuerySet, StreamListenerAdapter
from repro.join.dominated_set_cover import DominatedSetCoverJoin
from repro.join.skyline import SkylineEarlyStopJoin
from repro.nnt import NNTIndex, dominates

from .conftest import random_labeled_graph


def small_queries(rng, count=3):
    return {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(count)
    }


def churn(rng, index, steps=60):
    for _ in range(steps):
        edges = list(index.graph.edges())
        vertices = list(index.graph.vertices())
        if edges and rng.random() < 0.45:
            u, v, _ = rng.choice(edges)
            index.delete_edge(u, v)
        elif len(vertices) >= 2:
            u, v = rng.sample(vertices, 2)
            if not index.graph.has_edge(u, v):
                index.insert_edge(u, v, rng.choice("xy"))
        else:
            index.insert_edge(0, 1, "x", "A", "B")


class TestDSCCounters:
    def setup_engine(self, seed):
        rng = random.Random(seed)
        query_set = QuerySet(small_queries(rng), depth_limit=2)
        engine = DominatedSetCoverJoin(query_set)
        index = NNTIndex(random_labeled_graph(rng, 6, extra_edges=3), depth_limit=2)
        engine.register_stream(0, index.npvs)
        index.add_listener(StreamListenerAdapter(engine, 0))
        churn(rng, index)
        return query_set, engine, index

    def test_dominant_counters_match_definition(self):
        """dominant[v][qv] must equal the number of qv's non-zero dims in
        which the (restricted) stream vector value is >= the query's."""
        query_set, engine, index = self.setup_engine(11)
        state = engine._streams[0]
        universe = query_set.dimension_universe
        for vertex, mirror in state.vectors.items():
            dominant = state.dominant[vertex]
            for record in query_set.vectors:
                expected = sum(
                    1
                    for dim, value in record.vector.items()
                    if mirror.get(dim, 0) >= value
                )
                assert dominant.get(record.index, 0) == expected, (vertex, record.index)

    def test_cover_counts_match_definition(self):
        query_set, engine, index = self.setup_engine(12)
        state = engine._streams[0]
        for record in query_set.vectors:
            expected = sum(
                1
                for mirror in state.vectors.values()
                if dominates(mirror, record.vector)
            )
            if record.num_dims == 0:
                continue  # trivial vectors excluded from counters
            assert state.cover.get(record.index, 0) == expected

    def test_uncovered_matches_definition(self):
        query_set, engine, index = self.setup_engine(13)
        state = engine._streams[0]
        for query_id, indices in query_set.by_query.items():
            expected = sum(
                1
                for i in indices
                if query_set.vectors[i].num_dims > 0
                and not any(
                    dominates(mirror, query_set.vectors[i].vector)
                    for mirror in state.vectors.values()
                )
            )
            assert state.uncovered[query_set.group_of[query_id]] == expected

    def test_mirrors_match_restricted_npvs(self):
        query_set, engine, index = self.setup_engine(14)
        state = engine._streams[0]
        universe = query_set.dimension_universe
        expected = {
            vertex: {dim: value for dim, value in vector.items() if dim in universe}
            for vertex, vector in index.npvs.items()
        }
        assert state.vectors == expected


class TestSkylineInternals:
    def setup_engine(self, seed):
        rng = random.Random(seed)
        query_set = QuerySet(small_queries(rng), depth_limit=2)
        engine = SkylineEarlyStopJoin(query_set)
        index = NNTIndex(random_labeled_graph(rng, 6, extra_edges=3), depth_limit=2)
        engine.register_stream(0, index.npvs)
        index.add_listener(StreamListenerAdapter(engine, 0))
        churn(rng, index)
        return query_set, engine, index

    def test_members_match_mirrors(self):
        query_set, engine, index = self.setup_engine(21)
        state = engine._streams[0]
        expected: dict = {}
        for vertex, mirror in state.vectors.items():
            for dim in mirror:
                expected.setdefault(dim, set()).add(vertex)
        assert state.members == expected

    def test_max_of_is_true_maximum(self):
        query_set, engine, index = self.setup_engine(22)
        state = engine._streams[0]
        for dim, members in state.members.items():
            true_max = max(state.vectors[v][dim] for v in members)
            assert state.max_of(dim) == true_max

    def test_probe_order_covers_maximal_vectors(self):
        query_set, engine, index = self.setup_engine(23)
        from repro.join.dominance import maximal_vectors

        for query_id, indices in query_set.by_query.items():
            vectors = [query_set.vectors[i].vector for i in indices]
            maximal = {indices[local] for local in maximal_vectors(vectors)}
            group_id = query_set.group_of[query_id]
            assert set(engine._probe_order[group_id]) == maximal

    def test_verdict_cache_respects_version(self):
        query_set, engine, index = self.setup_engine(24)
        query_id = query_set.query_ids()[0]
        group_id = query_set.group_of[query_id]
        first = engine.is_candidate(0, query_id)
        version = engine._streams[0].version
        assert engine._verdicts[(0, group_id)] == (version, first)
        # any change invalidates
        vertices = list(index.graph.vertices())
        if len(vertices) >= 2:
            u, v = vertices[:2]
            if not index.graph.has_edge(u, v):
                index.insert_edge(u, v, "x")
                assert engine._streams[0].version != version
