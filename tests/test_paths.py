"""Tests for GraphGrep's path-fingerprint substrate."""

import random

import pytest
from hypothesis import given, settings

from repro.baselines.paths import fingerprint_dominates, path_fingerprint
from repro.graph import LabeledGraph
from repro.isomorphism import find_subgraph_isomorphism

from .conftest import extract_connected_subgraph, graph_strategy, random_labeled_graph


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, "-")
    return graph


class TestPathFingerprint:
    def test_single_vertex(self):
        fp = path_fingerprint(chain(["A"]), num_buckets=None)
        assert fp == {("A",): 1}

    def test_edge_counts_both_orientations_once(self):
        fp = path_fingerprint(chain(["A", "B"]), num_buckets=None)
        assert fp[("A",)] == 1
        assert fp[("B",)] == 1
        assert fp[("A", "B")] == 1  # the undirected path counted once
        assert ("B", "A") not in fp  # canonical direction only

    def test_palindromic_path_counted_once(self):
        fp = path_fingerprint(chain(["A", "B", "A"]), num_buckets=None)
        assert fp[("A", "B", "A")] == 1

    def test_length_limit(self):
        fp = path_fingerprint(chain(["A", "B", "C", "D"]), max_length=2, num_buckets=None)
        assert all(len(key) <= 3 for key in fp)  # <= 2 edges -> <= 3 labels

    def test_edge_labels_optional(self):
        graph = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B")], [(0, 1, "bond")]
        )
        plain = path_fingerprint(graph, num_buckets=None)
        labeled = path_fingerprint(graph, include_edge_labels=True, num_buckets=None)
        assert ("A", "B") in plain
        assert ("A", ("bond", "B")) not in plain
        assert any("bond" in repr(key) for key in labeled)

    def test_hashed_buckets_conserve_mass(self):
        graph = random_labeled_graph(random.Random(5), 7, extra_edges=3)
        exact = path_fingerprint(graph, num_buckets=None)
        hashed = path_fingerprint(graph, num_buckets=64)
        assert sum(exact.values()) == sum(hashed.values())
        assert all(isinstance(key, int) and 0 <= key < 64 for key in hashed)

    def test_star_multiplicity(self):
        star = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B"), (2, "B"), (3, "B")],
            [(0, 1, "-"), (0, 2, "-"), (0, 3, "-")],
        )
        fp = path_fingerprint(star, num_buckets=None)
        assert fp[("A", "B")] == 3
        assert fp[("B", "A", "B")] == 3  # the three unordered B-A-B pairs


class TestFingerprintDominates:
    def test_reflexive(self):
        fp = path_fingerprint(chain(["A", "B", "C"]), num_buckets=None)
        assert fingerprint_dominates(fp, fp)

    def test_count_sensitive(self):
        small = {("A", "B"): 1}
        big = {("A", "B"): 2}
        assert fingerprint_dominates(big, small)
        assert not fingerprint_dominates(small, big)

    def test_missing_feature_fails(self):
        assert not fingerprint_dominates({("A",): 5}, {("B",): 1})


class TestSoundness:
    @pytest.mark.parametrize("buckets", (None, 128))
    @pytest.mark.parametrize("trial", range(6))
    def test_no_false_negatives(self, trial, buckets):
        rng = random.Random(9900 + trial)
        target = random_labeled_graph(rng, rng.randint(5, 9), extra_edges=rng.randint(0, 4))
        query = extract_connected_subgraph(rng, target, rng.randint(2, 4))
        assert find_subgraph_isomorphism(query, target) is not None
        target_fp = path_fingerprint(target, num_buckets=buckets)
        query_fp = path_fingerprint(query, num_buckets=buckets)
        assert fingerprint_dominates(target_fp, query_fp)


@settings(max_examples=25, deadline=None)
@given(graph_strategy(min_vertices=2, max_vertices=6))
def test_property_graph_dominates_own_fingerprint(graph):
    fp = path_fingerprint(graph)
    assert fingerprint_dominates(fp, fp)


@settings(max_examples=20, deadline=None)
@given(graph_strategy(min_vertices=3, max_vertices=6))
def test_property_hashing_never_strengthens_filter(graph):
    """Bucketed fingerprints admit everything the exact ones admit."""
    edges = list(graph.edges())
    if not edges:
        return
    query = graph.copy()
    query.remove_edge(edges[0][0], edges[0][1])
    for vertex in list(query.vertices()):
        if query.has_vertex(vertex) and query.degree(vertex) == 0:
            query.remove_vertex(vertex)
    exact_ok = fingerprint_dominates(
        path_fingerprint(graph, num_buckets=None), path_fingerprint(query, num_buckets=None)
    )
    hashed_ok = fingerprint_dominates(
        path_fingerprint(graph, num_buckets=32), path_fingerprint(query, num_buckets=32)
    )
    if exact_ok:
        assert hashed_ok
