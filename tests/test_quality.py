"""Filter-quality telemetry: candidate counters, pruning-power blame,
the budgeted precision probe, and the fig13/fig14 reconciliation.

The acceptance property lives in :class:`TestFigReconcile`: replaying a
fig14-style workload with the probe at 100% sampling and no time budget
must reproduce the offline false-positive ratio *exactly*, and sampled
rates must agree within the documented Bernoulli confidence bound.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.core.verify import PrecisionProbe
from repro.graph.operations import EdgeChange
from repro.obs import Registry
from repro.obs.quality import ProbeBudget, blame_dimension

from .conftest import random_labeled_graph


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test gets an enabled, empty registry and span buffer."""
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


def counter_value(name: str, **labels: str) -> float:
    instrument = obs.get_registry().get(name, labels=labels or None)
    return instrument.value if instrument is not None else 0.0


def pruned_series(engine: str) -> dict[str, float]:
    """dim -> count for one engine's ``join.<engine>.pruned`` metric."""
    base = f"join.{engine}.pruned"
    out: dict[str, float] = {}
    for key, entry in obs.get_registry().summary().items():
        if key == base or key.startswith(base + "{"):
            out[(entry.get("labels") or {}).get("dim", "?")] = entry["value"]
    return out


# ----------------------------------------------------------------------
# blame semantics
# ----------------------------------------------------------------------
class TestBlameDimension:
    def test_uncovered_dimension_is_blamed(self):
        query = {"a": 2, "b": 1}
        streams = [{"a": 1, "b": 5}, {"a": 0, "b": 9}]
        assert blame_dimension(query, streams) == "a"

    def test_first_uncovered_in_sorted_order(self):
        query = {"b": 3, "a": 3}
        streams = [{"a": 1, "b": 1}]
        assert blame_dimension(query, streams) == "a"

    def test_combination_when_each_dim_coverable_alone(self):
        query = {"a": 2, "b": 2}
        streams = [{"a": 5, "b": 0}, {"a": 0, "b": 5}]
        assert blame_dimension(query, streams) == "combination"

    def test_empty_stream_set_blames_first_dimension(self):
        assert blame_dimension({"x": 1}, []) == "x"

    def test_tuple_dimensions_stringify(self):
        query = {(1, "A", "B"): 2}
        assert blame_dimension(query, [{(1, "A", "B"): 1}]) == str((1, "A", "B"))


# ----------------------------------------------------------------------
# recorders
# ----------------------------------------------------------------------
class TestRecorders:
    def test_record_candidates_counts_per_pair(self):
        obs.quality.record_candidates([("s0", "q0"), ("s0", "q1"), ("s0", "q0")])
        assert counter_value("filter.candidates", stream="s0", query="q0") == 2
        assert counter_value("filter.candidates", stream="s0", query="q1") == 1

    def test_record_pruned_counts_per_dimension(self):
        obs.quality.record_pruned("nl", "a")
        obs.quality.record_pruned("nl", "a")
        obs.quality.record_pruned("nl", "combination")
        assert pruned_series("nl") == {"a": 2.0, "combination": 1.0}

    def test_record_probe_gauge_is_cumulative(self):
        obs.quality.record_probe(checked=4, false_positives=1)
        gauge = obs.get_registry().get("filter.fp_ratio_estimate")
        assert gauge.value == pytest.approx(0.25)
        obs.quality.record_probe(checked=4, false_positives=3, skipped=2)
        # 4 of 8 cumulative, not 3 of 4 from the last pass.
        assert gauge.value == pytest.approx(0.5)
        assert counter_value("filter.probe.skipped") == 2

    def test_record_probe_without_checks_sets_no_gauge(self):
        obs.quality.record_probe(checked=0, false_positives=0, skipped=5)
        assert obs.get_registry().get("filter.fp_ratio_estimate") is None

    def test_disabled_recorders_touch_nothing(self):
        obs.disable()
        obs.quality.record_candidates([("s0", "q0")])
        obs.quality.record_pruned("nl", "a")
        obs.quality.record_probe(checked=3, false_positives=1)
        assert obs.get_registry().summary() == {}

    def test_gauge_renders_with_the_documented_prometheus_name(self):
        obs.quality.record_probe(checked=2, false_positives=1)
        text = obs.render_prometheus(obs.get_registry().summary())
        assert "repro_filter_fp_ratio_estimate 0.5" in text


# ----------------------------------------------------------------------
# the probe budget
# ----------------------------------------------------------------------
class TestProbeBudget:
    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            ProbeBudget(rate=-0.1)
        with pytest.raises(ValueError):
            ProbeBudget(rate=1.5)
        with pytest.raises(ValueError):
            ProbeBudget(budget_seconds=-1.0)

    def test_uncapped_budget_never_expires(self):
        budget = ProbeBudget(rate=1.0, budget_seconds=None)
        budget.start()
        assert not budget.expired()

    def test_zero_budget_expires_immediately(self):
        budget = ProbeBudget(rate=1.0, budget_seconds=0.0)
        budget.start()
        assert budget.expired()


# ----------------------------------------------------------------------
# the precision probe on a live monitor
# ----------------------------------------------------------------------
def tiny_monitor(method: str = "dsc", seed: int = 5):
    from repro.datasets.stream_gen import synthesize_stream

    rng = random.Random(seed)
    queries = {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(3)
    }
    monitor = StreamMonitor(queries, method=method)
    streams = {}
    for i in range(3):
        base = random_labeled_graph(rng, rng.randint(5, 8), extra_edges=2)
        streams[f"s{i}"] = synthesize_stream(
            base, 0.3, 0.2, 5, rng, all_pairs=True, name=f"s{i}"
        )
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    horizon = min(len(s.operations) for s in streams.values())
    for t in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[t])
        monitor.matches()  # poll: the engines evaluate (and blame) here
    return monitor


class TestPrecisionProbe:
    def test_full_rate_equals_offline_verification(self):
        monitor = tiny_monitor()
        emitted = monitor.matches()
        confirmed = monitor.verified_matches(emitted)
        probe = PrecisionProbe(monitor, rate=1.0, budget_seconds=None)
        result = probe.sample()
        assert result["checked"] == len(emitted)
        assert result["skipped"] == 0
        expected = (len(emitted) - len(confirmed)) / len(emitted)
        assert probe.fp_ratio_estimate == pytest.approx(expected)

    def test_zero_rate_checks_nothing(self):
        monitor = tiny_monitor()
        probe = PrecisionProbe(monitor, rate=0.0)
        result = probe.sample()
        assert result["checked"] == 0
        assert result["skipped"] == len(monitor.matches())
        assert probe.fp_ratio_estimate is None

    def test_exhausted_budget_skips_instead_of_blocking(self):
        monitor = tiny_monitor()
        probe = PrecisionProbe(monitor, rate=1.0, budget_seconds=0.0)
        result = probe.sample()
        assert result["checked"] == 0
        assert result["skipped"] == len(monitor.matches())

    def test_probe_never_alters_the_filter_output(self):
        monitor = tiny_monitor()
        before = set(monitor.matches())
        PrecisionProbe(monitor, rate=1.0, budget_seconds=None).sample()
        assert set(monitor.matches()) == before

    def test_probe_feeds_the_live_gauge_and_span(self):
        monitor = tiny_monitor()
        PrecisionProbe(monitor, rate=1.0, budget_seconds=None).sample()
        gauge = obs.get_registry().get("filter.fp_ratio_estimate")
        assert gauge is not None and 0.0 <= gauge.value <= 1.0
        assert any(record.name == "monitor.probe" for record in obs.spans())

    def test_sampling_is_seeded_and_reproducible(self):
        tallies = []
        for _ in range(2):
            monitor = tiny_monitor()
            probe = PrecisionProbe(monitor, rate=0.5, budget_seconds=None, seed=7)
            tallies.append(probe.sample())
        assert tallies[0] == tallies[1]


# ----------------------------------------------------------------------
# per-engine pruning-power counters
# ----------------------------------------------------------------------
class TestEnginePruningCounters:
    @pytest.mark.parametrize("method", ["nl", "dsc", "skyline", "matrix"])
    def test_failed_probes_are_blamed(self, method):
        monitor = tiny_monitor(method=method)
        series = pruned_series(method)
        assert series, f"{method} recorded no pruned candidates"
        assert all(count > 0 for count in series.values())
        # Every blamed dimension is either a stringified NPV dimension
        # or the documented "combination" verdict.
        for dim in series:
            assert dim == "combination" or dim.startswith("(")

    def test_engines_agree_on_candidates_while_blaming(self):
        """Recording blame must not perturb the filter verdicts."""
        answers = {
            method: frozenset(tiny_monitor(method=method).matches())
            for method in ("nl", "dsc", "skyline", "matrix")
        }
        assert len(set(answers.values())) == 1

    def test_monitor_matches_records_candidate_counters(self):
        monitor = tiny_monitor()
        emitted = monitor.matches()
        total = sum(
            entry["value"]
            for key, entry in obs.get_registry().summary().items()
            if key.startswith("filter.candidates")
        )
        assert total >= len(emitted) > 0


# ----------------------------------------------------------------------
# reconciling the live estimate with the offline figs 13/14 ratio
# ----------------------------------------------------------------------
class TestFigReconcile:
    @pytest.fixture(scope="class")
    def fig14_workload(self):
        from repro.experiments.config import SMOKE
        from repro.experiments.workloads import build_synthetic_stream_workload

        return build_synthetic_stream_workload(SMOKE, "dense").limited(
            num_queries=4, num_streams=4, timestamps=8
        )

    def test_full_sampling_matches_offline_exactly(self, fig14_workload):
        from repro.experiments.fp_reconcile import reconcile

        result = reconcile(fig14_workload, method="dsc", rate=1.0, budget_seconds=None)
        assert result["offline"]["candidates"] > 0
        # The workload is chosen so the filter has real false positives —
        # otherwise the ratio comparison is vacuous.
        assert result["offline"]["false_positives"] > 0
        assert result["probed"]["skipped"] == 0
        assert result["difference"] == 0.0
        assert result["agrees"]

    def test_sampled_rate_agrees_within_the_bound(self, fig14_workload):
        from repro.experiments.fp_reconcile import reconcile

        result = reconcile(
            fig14_workload, method="dsc", rate=0.5, budget_seconds=None, seed=3
        )
        assert 0 < result["probed"]["checked"] < result["offline"]["candidates"]
        assert result["bound"] is not None
        assert result["agrees"], (
            f"offline {result['offline']['fp_ratio']:.4f} vs "
            f"estimate {result['probed']['fp_ratio_estimate']:.4f} "
            f"exceeds bound {result['bound']:.4f}"
        )

    def test_zero_rate_reports_disagreement_not_a_crash(self, fig14_workload):
        from repro.experiments.fp_reconcile import reconcile

        result = reconcile(fig14_workload, method="dsc", rate=0.0)
        assert result["probed"]["fp_ratio_estimate"] is None
        assert result["bound"] is None
        assert not result["agrees"]
