"""Tests for the GraphGrep baseline (static and streaming forms)."""

import random

import pytest

from repro.baselines import GraphGrepFilter, GraphGrepStreamFilter
from repro.graph import EdgeChange, GraphChangeOperation, LabeledGraph, apply_operation
from repro.isomorphism import SubgraphMatcher

from .conftest import extract_connected_subgraph, random_labeled_graph


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, "-")
    return graph


class TestStaticFilter:
    def test_candidates_for(self, rng):
        db = {0: chain(["A", "B", "C"]), 1: chain(["C", "C", "C"])}
        flt = GraphGrepFilter(db)
        assert flt.candidates_for(chain(["A", "B"])) == {0}
        assert flt.candidates_for(chain(["C", "C"])) == {1}

    def test_count_dominance(self, rng):
        # Query needs two A-B paths; graph 0 has only one.
        two_ab = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B"), (2, "A"), (3, "B")],
            [(0, 1, "-"), (2, 3, "-"), (1, 2, "-")],
        )
        db = {0: chain(["A", "B", "C"]), 1: two_ab}
        flt = GraphGrepFilter(db)
        assert 0 not in flt.candidates_for(two_ab)
        assert 1 in flt.candidates_for(two_ab)

    @pytest.mark.parametrize("trial", range(5))
    def test_no_false_negatives(self, trial):
        rng = random.Random(6100 + trial)
        db = {
            i: random_labeled_graph(rng, rng.randint(4, 8), extra_edges=rng.randint(0, 3))
            for i in range(6)
        }
        source = rng.choice(list(db))
        query = extract_connected_subgraph(rng, db[source], 3)
        truth = {
            graph_id
            for graph_id, graph in db.items()
            if SubgraphMatcher(graph).is_subgraph(query)
        }
        assert truth <= GraphGrepFilter(db).candidates_for(query)


class TestStreamFilter:
    def test_update_and_candidates(self):
        flt = GraphGrepStreamFilter({"q": chain(["A", "B"])})
        flt.update_stream(0, chain(["A", "B", "C"]))
        flt.update_stream(1, chain(["C", "D"]))
        assert flt.candidates() == {(0, "q")}
        assert flt.is_candidate(0, "q")
        assert not flt.is_candidate(1, "q")

    def test_remove_stream(self):
        flt = GraphGrepStreamFilter({"q": chain(["A", "B"])})
        flt.update_stream(0, chain(["A", "B"]))
        flt.remove_stream(0)
        assert flt.candidates() == set()
        flt.remove_stream(0)  # idempotent

    def test_tracks_changes(self):
        flt = GraphGrepStreamFilter({"q": chain(["A", "B", "C"])})
        mirror = chain(["A", "B"])
        flt.update_stream(0, mirror)
        assert not flt.is_candidate(0, "q")
        apply_operation(
            mirror, GraphChangeOperation([EdgeChange.insert(1, 2, "-", v_label="C")])
        )
        flt.update_stream(0, mirror)
        assert flt.is_candidate(0, "q")
