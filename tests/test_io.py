"""Round-trip tests for the text serialization of graphs and streams."""

import pytest
from hypothesis import given, settings

from repro.graph import EdgeChange, GraphChangeOperation, GraphError, GraphStream, LabeledGraph
from repro.graph.io import (
    graph_from_string,
    graph_to_string,
    read_graph_set,
    read_stream,
    write_graph_set,
    write_stream,
)

from .conftest import graph_strategy


def string_graph() -> LabeledGraph:
    """A graph whose ids/labels are strings (the io layer's native type)."""
    return LabeledGraph.from_vertices_and_edges(
        [("n1", "A"), ("n2", "B"), ("n3", "C")],
        [("n1", "n2", "x"), ("n2", "n3", "y")],
    )


class TestGraphRoundTrip:
    def test_string_round_trip(self):
        graph = string_graph()
        assert graph_from_string(graph_to_string(graph)) == graph

    def test_empty_graph_round_trip(self):
        assert graph_from_string(graph_to_string(LabeledGraph())) == LabeledGraph()

    def test_file_round_trip(self, tmp_path):
        graphs = [string_graph(), LabeledGraph()]
        path = tmp_path / "set.txt"
        write_graph_set(graphs, path, names=["first", "second"])
        loaded = read_graph_set(path)
        assert [name for name, _ in loaded] == ["first", "second"]
        assert loaded[0][1] == graphs[0]
        assert loaded[1][1] == graphs[1]

    def test_whitespace_token_rejected(self):
        graph = LabeledGraph()
        graph.add_vertex("a b", "L")
        with pytest.raises(GraphError):
            graph_to_string(graph)

    def test_malformed_header_rejected(self):
        with pytest.raises(GraphError):
            graph_from_string("t missing-hash g\nv 1 A\n")

    def test_data_before_header_rejected(self):
        with pytest.raises(GraphError):
            graph_from_string("v 1 A\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(GraphError):
            graph_from_string("t # g\nz 1 2\n")

    def test_names_length_mismatch(self, tmp_path):
        with pytest.raises(GraphError):
            write_graph_set([string_graph()], tmp_path / "x.txt", names=["a", "b"])


class TestStreamRoundTrip:
    def test_round_trip(self, tmp_path):
        initial = string_graph()
        stream = GraphStream(
            initial,
            [
                GraphChangeOperation(
                    [EdgeChange.insert("n3", "n4", "x", v_label="D")]
                ),
                GraphChangeOperation([EdgeChange.delete("n1", "n2")]),
                GraphChangeOperation([]),
            ],
            name="mystream",
        )
        path = tmp_path / "stream.txt"
        write_stream(stream, path)
        loaded = read_stream(path)
        assert loaded.name == "mystream"
        assert loaded.initial == stream.initial
        assert len(loaded) == len(stream)
        # Replaying both must produce identical graphs at each timestamp.
        for t in range(len(stream)):
            assert loaded.graph_at(t) == stream.graph_at(t)

    def test_stream_without_ops(self, tmp_path):
        stream = GraphStream(string_graph(), [], name="still")
        path = tmp_path / "still.txt"
        write_stream(stream, path)
        loaded = read_stream(path)
        assert len(loaded) == 1
        assert loaded.initial == stream.initial

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("op\nins 1 2 x\n")
        with pytest.raises(GraphError):
            read_stream(path)

    def test_change_before_op_rejected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("t # s\nv 1 A\nins 1 2 x\n")
        with pytest.raises(GraphError):
            read_stream(path)


@settings(max_examples=30, deadline=None)
@given(graph_strategy())
def test_any_small_graph_round_trips(graph):
    # io stringifies ids/labels; compare against the stringified graph.
    as_strings = LabeledGraph()
    for vertex, label in graph.vertex_items():
        as_strings.add_vertex(str(vertex), str(label))
    for u, v, label in graph.edges():
        as_strings.add_edge(str(u), str(v), str(label))
    assert graph_from_string(graph_to_string(graph)) == as_strings
