"""Hypothesis stateful machines.

Two rule-based state machines drive the system through arbitrary
interleavings of operations, holding the library's core invariants at
every step:

* ``NNTIndexMachine`` — random edge churn on one ``NNTIndex``; after
  every step the incremental state must equal a fresh rebuild.
* ``MonitorMachine`` — a full :class:`StreamMonitor` with stream AND
  query churn; after every step all engines agree with the brute-force
  oracle, and the filter stays sound w.r.t. exact isomorphism.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule

from repro import StreamMonitor
from repro.graph import LabeledGraph
from repro.isomorphism import SubgraphMatcher
from repro.nnt import NNTIndex, project_graph

LABELS = ("A", "B", "C")


class NNTIndexMachine(RuleBasedStateMachine):
    """Random edge churn with full integrity checks."""

    def __init__(self):
        super().__init__()
        self.index = NNTIndex(depth_limit=2)
        self.next_vertex = 0

    @rule(seed=st.integers(0, 10**6))
    def insert_random_edge(self, seed):
        rng = random.Random(seed)
        vertices = list(self.index.graph.vertices())
        if len(vertices) >= 2 and rng.random() < 0.7:
            u, v = rng.sample(vertices, 2)
            if not self.index.graph.has_edge(u, v):
                self.index.insert_edge(u, v, rng.choice("xy"))
                return
        anchor = rng.choice(vertices) if vertices else None
        new_vertex = self.next_vertex
        self.next_vertex += 1
        if anchor is None:
            other = self.next_vertex
            self.next_vertex += 1
            self.index.insert_edge(
                new_vertex, other, "x", rng.choice(LABELS), rng.choice(LABELS)
            )
        else:
            self.index.insert_edge(anchor, new_vertex, "x", None, rng.choice(LABELS))

    @rule(seed=st.integers(0, 10**6))
    def delete_random_edge(self, seed):
        edges = list(self.index.graph.edges())
        if edges:
            u, v, _ = random.Random(seed).choice(edges)
            self.index.delete_edge(u, v)

    @invariant()
    def equals_fresh_rebuild(self):
        assert self.index.npvs == project_graph(self.index.graph, 2)

    @invariant()
    def structures_consistent(self):
        self.index.check_integrity()


class MonitorMachine(RuleBasedStateMachine):
    """Stream + query churn on a StreamMonitor; engines stay equivalent
    and sound."""

    def __init__(self):
        super().__init__()
        self.monitors = {}
        self.mirrors: dict = {}
        self.queries: dict = {}
        self.next_query = 0
        self.next_stream = 0
        self.next_vertex = 0

    @initialize()
    def setup(self):
        base = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B")], [(0, 1, "x")]
        )
        self.queries = {"q0": base}
        self.monitors = {
            method: StreamMonitor(dict(self.queries), method=method, depth_limit=2)
            for method in ("nl", "dsc", "skyline")
        }
        self.next_query = 1

    def _apply_change(self, stream_id, change):
        from repro.graph import apply_change

        apply_change(self.mirrors[stream_id], change)
        for monitor in self.monitors.values():
            monitor.apply(stream_id, change)

    @rule()
    def add_stream(self):
        stream_id = f"s{self.next_stream}"
        self.next_stream += 1
        self.mirrors[stream_id] = LabeledGraph()
        for monitor in self.monitors.values():
            monitor.add_stream(stream_id)

    @precondition(lambda self: self.mirrors)
    @rule(seed=st.integers(0, 10**6))
    def mutate_stream(self, seed):
        rng = random.Random(seed)
        stream_id = rng.choice(sorted(self.mirrors))
        mirror = self.mirrors[stream_id]
        from repro.graph import EdgeChange

        edges = list(mirror.edges())
        vertices = list(mirror.vertices())
        if edges and rng.random() < 0.4:
            u, v, _ = rng.choice(edges)
            self._apply_change(stream_id, EdgeChange.delete(u, v))
        elif len(vertices) >= 2 and rng.random() < 0.6:
            u, v = rng.sample(vertices, 2)
            if not mirror.has_edge(u, v):
                self._apply_change(stream_id, EdgeChange.insert(u, v, "x"))
        else:
            new_vertex = self.next_vertex
            self.next_vertex += 1
            if vertices:
                self._apply_change(
                    stream_id,
                    EdgeChange.insert(
                        rng.choice(vertices), new_vertex, "x", None, rng.choice(LABELS)
                    ),
                )
            else:
                other = self.next_vertex
                self.next_vertex += 1
                self._apply_change(
                    stream_id,
                    EdgeChange.insert(
                        new_vertex, other, "x", rng.choice(LABELS), rng.choice(LABELS)
                    ),
                )

    @precondition(lambda self: len(self.mirrors) > 1)
    @rule(seed=st.integers(0, 10**6))
    def remove_stream(self, seed):
        stream_id = random.Random(seed).choice(sorted(self.mirrors))
        del self.mirrors[stream_id]
        for monitor in self.monitors.values():
            monitor.remove_stream(stream_id)

    @precondition(lambda self: len(self.queries) < 4)
    @rule(seed=st.integers(0, 10**6))
    def add_query(self, seed):
        rng = random.Random(seed)
        size = rng.randint(2, 4)
        query = LabeledGraph()
        for i in range(size):
            query.add_vertex(i, rng.choice(LABELS))
        for i in range(1, size):
            query.add_edge(i, rng.randrange(i), rng.choice("xy"))
        query_id = f"q{self.next_query}"
        self.next_query += 1
        self.queries[query_id] = query
        for monitor in self.monitors.values():
            monitor.add_query(query_id, query)

    @precondition(lambda self: len(self.queries) > 1)
    @rule(seed=st.integers(0, 10**6))
    def remove_query(self, seed):
        query_id = random.Random(seed).choice(sorted(self.queries))
        del self.queries[query_id]
        for monitor in self.monitors.values():
            monitor.remove_query(query_id)

    @invariant()
    def engines_agree(self):
        answers = {
            method: frozenset(monitor.matches())
            for method, monitor in self.monitors.items()
        }
        assert len(set(answers.values())) == 1, answers

    @invariant()
    def filter_is_sound(self):
        reported = next(iter(self.monitors.values())).matches()
        for stream_id, mirror in self.mirrors.items():
            matcher = SubgraphMatcher(mirror)
            for query_id, query in self.queries.items():
                if matcher.is_subgraph(query):
                    assert (stream_id, query_id) in reported


TestNNTIndexMachine = NNTIndexMachine.TestCase
TestNNTIndexMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)

TestMonitorMachine = MonitorMachine.TestCase
TestMonitorMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
