"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.io import read_graph_set, read_stream


@pytest.fixture
def molecule_db(tmp_path):
    path = tmp_path / "db.txt"
    assert main(["generate", "molecules", "--out", str(path), "--count", "12", "--seed", "1"]) == 0
    return path


class TestGenerate:
    def test_molecules(self, molecule_db):
        graphs = read_graph_set(molecule_db)
        assert len(graphs) == 12
        assert all(g.num_vertices >= 4 for _, g in graphs)

    def test_ggen(self, tmp_path):
        path = tmp_path / "syn.txt"
        assert main(
            ["generate", "ggen", "--out", str(path), "--count", "5", "--size", "10"]
        ) == 0
        assert len(read_graph_set(path)) == 5

    def test_queries_from_db(self, tmp_path, molecule_db):
        out = tmp_path / "q.txt"
        assert main(
            [
                "generate", "queries", "--out", str(out),
                "--from-db", str(molecule_db), "--count", "4", "--query-edges", "3",
            ]
        ) == 0
        queries = read_graph_set(out)
        assert len(queries) == 4
        assert all(q.num_edges <= 3 for _, q in queries)

    def test_queries_requires_db(self, tmp_path):
        assert main(["generate", "queries", "--out", str(tmp_path / "q.txt")]) == 2

    def test_reality_stream(self, tmp_path):
        path = tmp_path / "rm.txt"
        assert main(
            [
                "generate", "reality-stream", "--out", str(path),
                "--timestamps", "6", "--devices", "20",
            ]
        ) == 0
        stream = read_stream(path)
        assert len(stream) == 6
        stream.final_graph()  # replayable

    def test_synthetic_stream(self, tmp_path):
        path = tmp_path / "syn_stream.txt"
        assert main(
            [
                "generate", "synthetic-stream", "--out", str(path),
                "--timestamps", "5", "--size", "6", "--density", "sparse",
            ]
        ) == 0
        stream = read_stream(path)
        assert len(stream) == 5
        stream.final_graph()


class TestSearch:
    def test_search_with_verify(self, tmp_path, molecule_db, capsys):
        queries = tmp_path / "q.txt"
        main(
            [
                "generate", "queries", "--out", str(queries),
                "--from-db", str(molecule_db), "--count", "2", "--query-edges", "2",
            ]
        )
        assert main(["search", "--db", str(molecule_db), "--queries", str(queries)]) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert out.count("q") >= 2

    def test_search_filter_only(self, tmp_path, molecule_db, capsys):
        queries = tmp_path / "q.txt"
        main(
            [
                "generate", "queries", "--out", str(queries),
                "--from-db", str(molecule_db), "--count", "1", "--query-edges", "2",
            ]
        )
        assert main(
            ["search", "--db", str(molecule_db), "--queries", str(queries), "--no-verify"]
        ) == 0
        assert "candidates" in capsys.readouterr().out


class TestMonitor:
    def test_monitor_replay(self, tmp_path, capsys):
        stream_path = tmp_path / "s.txt"
        main(
            [
                "generate", "synthetic-stream", "--out", str(stream_path),
                "--timestamps", "8", "--size", "6", "--seed", "3",
            ]
        )
        db_path = tmp_path / "base.txt"
        main(["generate", "ggen", "--out", str(db_path), "--count", "1", "--size", "6", "--seed", "3"])
        queries = tmp_path / "q.txt"
        main(
            [
                "generate", "queries", "--out", str(queries),
                "--from-db", str(db_path), "--count", "2", "--query-edges", "2",
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "monitor", "--queries", str(queries), "--streams", str(stream_path),
                "--method", "dsc", "--verify",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "final possible pairs:" in out


class TestExperiment:
    def test_experiment_driver(self, capsys):
        assert main(["experiment", "fig12", "--scale", "smoke"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["experiment", "nope", "--scale", "smoke"]) == 2


class TestExperimentExport:
    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "fig12.json"
        assert main(["experiment", "fig12", "--scale", "smoke", "--out", str(out)]) == 0
        import json

        doc = json.loads(out.read_text())
        assert doc["figure_id"] == "Figure 12"

    def test_out_directory_per_figure(self, tmp_path, capsys):
        # A suffix-less --out is treated as a directory: one file per
        # figure, named <figure>.<format>.
        out = tmp_path / "results"
        assert main(
            ["experiment", "fig12", "--scale", "smoke", "--out", str(out),
             "--format", "md"]
        ) == 0
        text = (out / "fig12.md").read_text()
        assert text.startswith("## Figure 12")
