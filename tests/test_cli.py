"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.io import read_graph_set, read_stream


@pytest.fixture
def molecule_db(tmp_path):
    path = tmp_path / "db.txt"
    assert main(["generate", "molecules", "--out", str(path), "--count", "12", "--seed", "1"]) == 0
    return path


class TestGenerate:
    def test_molecules(self, molecule_db):
        graphs = read_graph_set(molecule_db)
        assert len(graphs) == 12
        assert all(g.num_vertices >= 4 for _, g in graphs)

    def test_ggen(self, tmp_path):
        path = tmp_path / "syn.txt"
        assert main(
            ["generate", "ggen", "--out", str(path), "--count", "5", "--size", "10"]
        ) == 0
        assert len(read_graph_set(path)) == 5

    def test_queries_from_db(self, tmp_path, molecule_db):
        out = tmp_path / "q.txt"
        assert main(
            [
                "generate", "queries", "--out", str(out),
                "--from-db", str(molecule_db), "--count", "4", "--query-edges", "3",
            ]
        ) == 0
        queries = read_graph_set(out)
        assert len(queries) == 4
        assert all(q.num_edges <= 3 for _, q in queries)

    def test_queries_requires_db(self, tmp_path):
        assert main(["generate", "queries", "--out", str(tmp_path / "q.txt")]) == 2

    def test_reality_stream(self, tmp_path):
        path = tmp_path / "rm.txt"
        assert main(
            [
                "generate", "reality-stream", "--out", str(path),
                "--timestamps", "6", "--devices", "20",
            ]
        ) == 0
        stream = read_stream(path)
        assert len(stream) == 6
        stream.final_graph()  # replayable

    def test_synthetic_stream(self, tmp_path):
        path = tmp_path / "syn_stream.txt"
        assert main(
            [
                "generate", "synthetic-stream", "--out", str(path),
                "--timestamps", "5", "--size", "6", "--density", "sparse",
            ]
        ) == 0
        stream = read_stream(path)
        assert len(stream) == 5
        stream.final_graph()


class TestSearch:
    def test_search_with_verify(self, tmp_path, molecule_db, capsys):
        queries = tmp_path / "q.txt"
        main(
            [
                "generate", "queries", "--out", str(queries),
                "--from-db", str(molecule_db), "--count", "2", "--query-edges", "2",
            ]
        )
        assert main(["search", "--db", str(molecule_db), "--queries", str(queries)]) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert out.count("q") >= 2

    def test_search_filter_only(self, tmp_path, molecule_db, capsys):
        queries = tmp_path / "q.txt"
        main(
            [
                "generate", "queries", "--out", str(queries),
                "--from-db", str(molecule_db), "--count", "1", "--query-edges", "2",
            ]
        )
        assert main(
            ["search", "--db", str(molecule_db), "--queries", str(queries), "--no-verify"]
        ) == 0
        assert "candidates" in capsys.readouterr().out


class TestMonitor:
    def test_monitor_replay(self, tmp_path, capsys):
        stream_path = tmp_path / "s.txt"
        main(
            [
                "generate", "synthetic-stream", "--out", str(stream_path),
                "--timestamps", "8", "--size", "6", "--seed", "3",
            ]
        )
        db_path = tmp_path / "base.txt"
        main(["generate", "ggen", "--out", str(db_path), "--count", "1", "--size", "6", "--seed", "3"])
        queries = tmp_path / "q.txt"
        main(
            [
                "generate", "queries", "--out", str(queries),
                "--from-db", str(db_path), "--count", "2", "--query-edges", "2",
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "monitor", "--queries", str(queries), "--streams", str(stream_path),
                "--method", "dsc", "--verify",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "final possible pairs:" in out


class TestExperiment:
    def test_experiment_driver(self, capsys):
        assert main(["experiment", "fig12", "--scale", "smoke"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["experiment", "nope", "--scale", "smoke"]) == 2


class TestExperimentExport:
    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "fig12.json"
        assert main(["experiment", "fig12", "--scale", "smoke", "--out", str(out)]) == 0
        import json

        doc = json.loads(out.read_text())
        assert doc["figure_id"] == "Figure 12"

    def test_out_directory_per_figure(self, tmp_path, capsys):
        # A suffix-less --out is treated as a directory: one file per
        # figure, named <figure>.<format>.
        out = tmp_path / "results"
        assert main(
            ["experiment", "fig12", "--scale", "smoke", "--out", str(out),
             "--format", "md"]
        ) == 0
        text = (out / "fig12.md").read_text()
        assert text.startswith("## Figure 12")


@pytest.fixture
def replay_inputs(tmp_path):
    """Queries plus two recorded streams for the replay/serve tests."""
    db_path = tmp_path / "base.txt"
    main(["generate", "ggen", "--out", str(db_path), "--count", "1", "--size", "6", "--seed", "3"])
    queries = tmp_path / "q.txt"
    main(
        [
            "generate", "queries", "--out", str(queries),
            "--from-db", str(db_path), "--count", "2", "--query-edges", "2",
        ]
    )
    streams = []
    for seed in ("3", "5"):
        stream_path = tmp_path / f"s{seed}.txt"
        main(
            [
                "generate", "synthetic-stream", "--out", str(stream_path),
                "--timestamps", "5", "--size", "6", "--seed", seed,
            ]
        )
        streams.append(str(stream_path))
    return str(queries), streams


class TestReplay:
    def test_single_worker_matches_monitor_output(self, replay_inputs, capsys):
        queries, streams = replay_inputs
        assert main(["monitor", "--queries", queries, "--streams", *streams]) == 0
        monitor_out = capsys.readouterr().out
        assert main(["replay", "--queries", queries, "--streams", *streams]) == 0
        replay_out = capsys.readouterr().out
        # Satellite invariant: library and runtime paths report events in
        # the same format (both via events()).
        assert replay_out == monitor_out

    def test_sharded_replay_same_events(self, replay_inputs, capsys):
        queries, streams = replay_inputs
        assert main(["replay", "--queries", queries, "--streams", *streams]) == 0
        single = capsys.readouterr().out
        assert main(
            ["replay", "--queries", queries, "--streams", *streams, "--workers", "2"]
        ) == 0
        sharded = capsys.readouterr().out
        event_lines = [line for line in sharded.splitlines() if not line.startswith("workers:")]
        assert "\n".join(event_lines) + "\n" == single
        assert "policy: block" in sharded

    def test_replay_with_live_rescale_same_events(self, replay_inputs, capsys):
        queries, streams = replay_inputs
        assert main(["replay", "--queries", queries, "--streams", *streams]) == 0
        single = capsys.readouterr().out
        assert main(
            [
                "replay", "--queries", queries, "--streams", *streams,
                "--workers", "2", "--rescale-at", "2:4", "--rescale-at", "4:2",
            ]
        ) == 0
        sharded = capsys.readouterr().out
        event_lines = [
            line
            for line in sharded.splitlines()
            if not line.startswith("workers:") and "rescale" not in line
        ]
        assert "\n".join(event_lines) + "\n" == single
        assert "t=2: rescale workers 2->4" in sharded
        assert "t=4: rescale workers 4->2" in sharded
        assert "rescales: 2" in sharded

    def test_replay_with_shm_plane_same_events(self, replay_inputs, capsys):
        queries, streams = replay_inputs
        assert main(["replay", "--queries", queries, "--streams", *streams]) == 0
        single = capsys.readouterr().out
        assert main(
            [
                "replay", "--queries", queries, "--streams", *streams,
                "--workers", "2", "--shm", "--method", "matrix",
            ]
        ) == 0
        sharded = capsys.readouterr().out
        event_lines = [
            line for line in sharded.splitlines() if not line.startswith("workers:")
        ]
        assert "\n".join(event_lines) + "\n" == single

    def test_rescale_and_shm_flags_need_workers(self, replay_inputs):
        queries, streams = replay_inputs
        with pytest.raises(SystemExit):
            main(
                ["replay", "--queries", queries, "--streams", *streams,
                 "--rescale-at", "2:4"]
            )
        with pytest.raises(SystemExit):
            main(["replay", "--queries", queries, "--streams", *streams, "--shm"])

    @pytest.mark.parametrize("spec", ("nope", "2", "x:3", "2:y", "0:2", "2:0"))
    def test_malformed_rescale_spec_rejected(self, replay_inputs, spec):
        queries, streams = replay_inputs
        with pytest.raises(SystemExit):
            main(
                ["replay", "--queries", queries, "--streams", *streams,
                 "--workers", "2", "--rescale-at", spec]
            )

    def test_sharded_replay_with_checkpoints(self, replay_inputs, tmp_path, capsys):
        queries, streams = replay_inputs
        assert main(
            [
                "replay", "--queries", queries, "--streams", *streams,
                "--workers", "2", "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--checkpoint-every", "3", "--policy", "spill",
            ]
        ) == 0
        assert "final possible pairs:" in capsys.readouterr().out
        assert (tmp_path / "ckpt" / "shard_0" / "LATEST").exists()


class TestServe:
    def _serve(self, monkeypatch, capsys, script, extra_args=()):
        import io
        import json
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(script))
        queries = getattr(self, "_queries_path")
        assert main(["serve", "--queries", queries, *extra_args]) == 0
        return [json.loads(line) for line in capsys.readouterr().out.splitlines()]

    @pytest.fixture(autouse=True)
    def _queries(self, replay_inputs):
        self._queries_path = replay_inputs[0]

    def test_line_protocol_in_process(self, monkeypatch, capsys):
        script = (
            "stream a\n"
            "ins a 1 2 - X Y\n"
            "tick\n"
            "matches\n"
            "stats\n"
            "bogus\n"
            "quit\n"
        )
        responses = self._serve(monkeypatch, capsys, script)
        assert [r["ok"] for r in responses] == [True, True, True, True, True, False, True]
        assert responses[2]["cmd"] == "tick"
        assert responses[2]["t"] == 1
        assert responses[4]["stats"]["num_streams"] == 1
        assert "unknown command" in responses[5]["error"]

    def test_line_protocol_sharded(self, monkeypatch, capsys, tmp_path):
        script = (
            "stream a\n"
            "ins a 1 2 - X Y\n"
            "tick\n"
            "checkpoint\n"
            "poll\n"
            "quit\n"
        )
        responses = self._serve(
            monkeypatch,
            capsys,
            script,
            extra_args=["--workers", "2", "--checkpoint-dir", str(tmp_path / "ck")],
        )
        assert all(r["ok"] for r in responses)
        checkpoint = next(r for r in responses if r["cmd"] == "checkpoint")
        assert len(checkpoint["shards"]) == 2

    def test_errors_are_reported_not_fatal(self, monkeypatch, capsys):
        script = (
            "stream a\n"
            "ins a 1 2 - X Y\n"
            "tick\n"
            "ins a 1 2 - X Y\n"
            "tick\n"
            "matches\n"
            "quit\n"
        )
        responses = self._serve(monkeypatch, capsys, script)
        # The duplicate edge insert fails at tick time but the server
        # keeps going and still answers the final commands.
        assert responses[-1]["cmd"] == "quit"
        assert any(not r["ok"] for r in responses)
