"""Unit tests for the NNT structure and its reference builder."""

import random

import pytest
from hypothesis import given, settings

from repro.graph import LabeledGraph
from repro.nnt import build_all_nnts, build_nnt, enumerate_simple_paths
from repro.nnt.tree import NNT, TreeNode

from .conftest import graph_strategy, random_labeled_graph


def paper_graph() -> LabeledGraph:
    """The running example's shape: a triangle with a pendant path."""
    return LabeledGraph.from_vertices_and_edges(
        [(1, "A"), (2, "B"), (3, "C"), (4, "B"), (5, "C")],
        [(1, 2, "-"), (1, 3, "-"), (2, 3, "-"), (3, 4, "-"), (4, 5, "-")],
    )


class TestTreeNode:
    def test_root_properties(self):
        root = TreeNode("v")
        assert root.is_root()
        assert root.depth == 0
        assert root.edge_label is None
        assert root.root_path_vertices() == ["v"]

    def test_root_path(self):
        root = TreeNode(1)
        child = TreeNode(2, root, 1, "x")
        grandchild = TreeNode(3, child, 2, "y")
        assert grandchild.root_path_vertices() == [1, 2, 3]

    def test_edge_on_root_path(self):
        root = TreeNode(1)
        child = TreeNode(2, root, 1, "x")
        grandchild = TreeNode(3, child, 2, "y")
        assert grandchild.edge_on_root_path(1, 2)
        assert grandchild.edge_on_root_path(2, 1)
        assert grandchild.edge_on_root_path(3, 2)
        assert not grandchild.edge_on_root_path(1, 3)

    def test_descendants(self):
        root = TreeNode(1)
        a = TreeNode(2, root, 1, "x")
        b = TreeNode(3, root, 1, "x")
        c = TreeNode(4, a, 2, "x")
        root.children = {2: a, 3: b}
        a.children = {4: c}
        assert {n.graph_vertex for n in root.descendants()} == {1, 2, 3, 4}
        assert {n.graph_vertex for n in root.descendants(include_self=False)} == {2, 3, 4}


class TestBuildNNT:
    def test_depth_limit_validated(self):
        with pytest.raises(ValueError):
            NNT("v", 0)

    def test_missing_root_rejected(self):
        with pytest.raises(ValueError):
            build_nnt(LabeledGraph(), "v", 2)

    def test_isolated_vertex_tree_is_root_only(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        tree = build_nnt(graph, 1, 3)
        assert tree.size() == 1
        assert tree.num_tree_edges() == 0

    def test_nodes_match_simple_paths(self):
        graph = paper_graph()
        for vertex in graph.vertices():
            for depth in (1, 2, 3):
                tree = build_nnt(graph, vertex, depth)
                paths = enumerate_simple_paths(graph, vertex, depth)
                assert tree.size() == len(paths), (vertex, depth)

    def test_tree_paths_are_simple(self):
        graph = paper_graph()
        tree = build_nnt(graph, 1, 3)
        for branch in tree.branches():
            edges = [
                frozenset((a.graph_vertex, b.graph_vertex))
                for a, b in zip(branch, branch[1:])
            ]
            assert len(edges) == len(set(edges))  # no repeated edge

    def test_depth_respected(self):
        tree = build_nnt(paper_graph(), 1, 2)
        assert all(node.depth <= 2 for node in tree.nodes())

    def test_edge_labels_recorded(self):
        graph = LabeledGraph.from_vertices_and_edges(
            [(1, "A"), (2, "B")], [(1, 2, "bond")]
        )
        tree = build_nnt(graph, 1, 1)
        child = tree.root.children[2]
        assert child.edge_label == "bond"

    def test_build_all(self):
        graph = paper_graph()
        trees = build_all_nnts(graph, 2)
        assert set(trees) == set(graph.vertices())
        assert all(tree.root_vertex == vertex for vertex, tree in trees.items())

    def test_triangle_depth3_revisits_vertex(self):
        # In a triangle, the depth-3 path 1-2-3-1 revisits vertex 1 but
        # repeats no edge, so it must be in the tree (simple = edge-simple).
        graph = LabeledGraph.from_vertices_and_edges(
            [(1, "A"), (2, "B"), (3, "C")],
            [(1, 2, "-"), (2, 3, "-"), (3, 1, "-")],
        )
        tree = build_nnt(graph, 1, 3)
        deep = [n for n in tree.nodes() if n.depth == 3]
        assert {n.graph_vertex for n in deep} == {1}
        assert len(deep) == 2  # both directions around the triangle

    def test_canonical_form_isomorphic_roots_equal(self):
        graph = paper_graph()
        renamed = graph.relabeled({1: 10, 2: 20, 3: 30, 4: 40, 5: 50})
        t1 = build_nnt(graph, 1, 3).canonical_form(graph.vertex_label)
        t2 = build_nnt(renamed, 10, 3).canonical_form(renamed.vertex_label)
        assert t1 == t2

    def test_canonical_form_differs_for_different_structure(self):
        graph = paper_graph()
        t1 = build_nnt(graph, 1, 3).canonical_form(graph.vertex_label)
        t5 = build_nnt(graph, 5, 3).canonical_form(graph.vertex_label)
        assert t1 != t5


class TestSizeBound:
    @pytest.mark.parametrize("trial", range(5))
    def test_size_bounded_by_degree_power(self, trial):
        rng = random.Random(300 + trial)
        graph = random_labeled_graph(rng, 8, extra_edges=4)
        r = graph.max_degree()
        depth = 3
        for vertex in graph.vertices():
            size = build_nnt(graph, vertex, depth).size()
            bound = sum(r**k for k in range(depth + 1))
            assert size <= bound


@settings(max_examples=30, deadline=None)
@given(graph_strategy(max_vertices=7))
def test_property_tree_size_equals_path_count(graph):
    for vertex in list(graph.vertices())[:3]:
        tree = build_nnt(graph, vertex, 3)
        assert tree.size() == len(enumerate_simple_paths(graph, vertex, 3))
