"""Differential soak tests: every execution path gives the same answer.

A Hypothesis rule machine drives random stream/query churn and edge
batches simultaneously through

* one :class:`StreamMonitor` per join engine (``nl``/``dsc``/``skyline``/
  ``matrix``),
* a 2-worker :class:`ShardedMonitor` (real processes, real queues), and
* plain mirror graphs feeding a networkx monomorphism oracle,

and checks three properties after **every** rule: all monitors report
identical ``matches()``, identical ``events()`` transitions, and the
filter has zero false negatives against the oracle (Definition 2.8's
no-false-negative guarantee, end to end through the runtime).  A
``rescale_pool`` rule grows/shrinks the sharded worker pool live
mid-soak, so elastic resharding is held to the same invariants.

Query churn is **live** on every path: ``register_query`` and
``deregister_query`` go through the sharded runtime's journaled control
commands — no monitor is ever rebuilt, so registration must snapshot
the current NPV state exactly or the very next invariant catches it.
A ``slow``-marked scripted soak pushes the same differential through
≥500 operations for 1/2/4 workers × every engine × shm on/off, with a
scripted SIGKILL of the whole worker pool right after a registration
(journal replay must recover the query, not lose or duplicate it).
"""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.monitor import StreamMonitor
from repro.graph import (
    EdgeChange,
    GraphChangeOperation,
    LabeledGraph,
    apply_change,
    apply_operation,
)
from repro.runtime import ShardedMonitor

from .test_vf2 import nx_subgraph_iso

ENGINE_METHODS = ("nl", "dsc", "skyline", "matrix")
VERTEX_LABELS = ("A", "B", "C")
EDGE_LABELS = ("x", "y")
DEPTH_LIMIT = 2

needs_shm_dir = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm to scan"
)


def random_query(rng: random.Random) -> LabeledGraph:
    size = rng.randint(2, 4)
    query = LabeledGraph()
    for i in range(size):
        query.add_vertex(i, rng.choice(VERTEX_LABELS))
    for i in range(1, size):
        query.add_edge(i, rng.randrange(i), rng.choice(EDGE_LABELS))
    return query


def random_batch(
    rng: random.Random, mirror: LabeledGraph, next_vertex: int
) -> tuple[GraphChangeOperation, int]:
    """A mixed insert/delete batch valid against ``mirror`` (applied as
    it is built so later changes see earlier ones, deletions first the
    way timestamp batches normally arrive)."""
    staged = mirror.copy()
    deletes: list[EdgeChange] = []
    inserts: list[EdgeChange] = []
    for _ in range(rng.randint(1, 4)):
        edges = list(staged.edges())
        vertices = list(staged.vertices())
        if edges and not inserts and rng.random() < 0.35:
            u, v, _ = rng.choice(edges)
            change = EdgeChange.delete(u, v)
            deletes.append(change)
        elif len(vertices) >= 2 and rng.random() < 0.5:
            u, v = rng.sample(vertices, 2)
            if staged.has_edge(u, v):
                continue
            change = EdgeChange.insert(u, v, rng.choice(EDGE_LABELS))
            inserts.append(change)
        else:
            anchor = rng.choice(vertices) if vertices else None
            new_vertex = next_vertex
            next_vertex += 1
            if anchor is None:
                other = next_vertex
                next_vertex += 1
                change = EdgeChange.insert(
                    new_vertex,
                    other,
                    rng.choice(EDGE_LABELS),
                    rng.choice(VERTEX_LABELS),
                    rng.choice(VERTEX_LABELS),
                )
            else:
                change = EdgeChange.insert(
                    anchor,
                    new_vertex,
                    rng.choice(EDGE_LABELS),
                    None,
                    rng.choice(VERTEX_LABELS),
                )
            inserts.append(change)
        apply_change(staged, change)
    return GraphChangeOperation(deletes + inserts), next_vertex


class SoakMachine(RuleBasedStateMachine):
    """Random churn; in-process engines, the sharded runtime and the
    networkx oracle must never disagree."""

    def __init__(self):
        super().__init__()
        self.monitors: dict[str, StreamMonitor] = {}
        self.sharded: ShardedMonitor | None = None
        self.mirrors: dict[str, LabeledGraph] = {}
        self.queries: dict[str, LabeledGraph] = {}
        self.next_query = 0
        self.next_stream = 0
        self.next_vertex = 0

    def teardown(self):
        if self.sharded is not None:
            self.sharded.close()

    @initialize()
    def setup(self):
        seed = LabeledGraph.from_vertices_and_edges([(0, "A"), (1, "B")], [(0, 1, "x")])
        self.queries = {"q0": seed}
        self.next_query = 1
        self.monitors = {
            method: StreamMonitor(
                dict(self.queries), method=method, depth_limit=DEPTH_LIMIT
            )
            for method in ENGINE_METHODS
        }
        self.sharded = ShardedMonitor(
            dict(self.queries),
            method="dsc",
            depth_limit=DEPTH_LIMIT,
            num_workers=2,
        )

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @precondition(lambda self: len(self.mirrors) < 4)
    @rule()
    def add_stream(self):
        stream_id = f"s{self.next_stream}"
        self.next_stream += 1
        self.mirrors[stream_id] = LabeledGraph()
        for monitor in self.monitors.values():
            monitor.add_stream(stream_id)
        self.sharded.add_stream(stream_id)

    @precondition(lambda self: len(self.mirrors) > 1)
    @rule(seed=st.integers(0, 10**6))
    def remove_stream(self, seed):
        stream_id = random.Random(seed).choice(sorted(self.mirrors))
        del self.mirrors[stream_id]
        for monitor in self.monitors.values():
            monitor.remove_stream(stream_id)
        self.sharded.remove_stream(stream_id)

    @precondition(lambda self: self.mirrors)
    @rule(seed=st.integers(0, 10**6))
    def apply_edge_batch(self, seed):
        rng = random.Random(seed)
        stream_id = rng.choice(sorted(self.mirrors))
        batch, self.next_vertex = random_batch(
            rng, self.mirrors[stream_id], self.next_vertex
        )
        apply_operation(self.mirrors[stream_id], batch)
        for monitor in self.monitors.values():
            monitor.apply(stream_id, batch)
        self.sharded.apply(stream_id, batch)

    @rule(target_workers=st.sampled_from((1, 2, 3, 4)))
    def rescale_pool(self, target_workers):
        """Live 2->4->2-style elastic resharding mid-soak: every
        invariant below must hold at the very next poll."""
        self.sharded.rescale(target_workers)

    @precondition(lambda self: len(self.queries) < 3)
    @rule(seed=st.integers(0, 10**6))
    def register_query(self, seed):
        """Live registration mid-soak, on every path at once — the new
        query must be answered from the *current* stream state with no
        false negatives at the very next invariant."""
        query = random_query(random.Random(seed))
        query_id = f"q{self.next_query}"
        self.next_query += 1
        self.queries[query_id] = query
        for monitor in self.monitors.values():
            monitor.register_query(query_id, query)
        self.sharded.register_query(query_id, query)

    @precondition(lambda self: len(self.queries) > 1)
    @rule(seed=st.integers(0, 10**6))
    def deregister_query(self, seed):
        query_id = random.Random(seed).choice(sorted(self.queries))
        del self.queries[query_id]
        for monitor in self.monitors.values():
            monitor.deregister_query(query_id)
        self.sharded.deregister_query(query_id)

    # ------------------------------------------------------------------
    # invariants — checked after every rule
    # ------------------------------------------------------------------
    @invariant()
    def all_paths_report_identical_matches(self):
        answers = {
            method: frozenset(monitor.matches())
            for method, monitor in self.monitors.items()
        }
        answers["sharded"] = frozenset(self.sharded.matches())
        assert len(set(answers.values())) == 1, answers

    @invariant()
    def all_paths_report_identical_events(self):
        streams = (
            [
                (method, monitor.events())
                for method, monitor in self.monitors.items()
            ]
            + [("sharded", self.sharded.events())]
        )
        as_tuples = {
            source: tuple((e.kind, e.stream_id, e.query_id) for e in events)
            for source, events in streams
        }
        assert len(set(as_tuples.values())) == 1, as_tuples

    @invariant()
    def no_false_negatives_against_networkx(self):
        reported = self.sharded.matches()
        for stream_id, mirror in self.mirrors.items():
            for query_id, query in self.queries.items():
                if nx_subgraph_iso(query, mirror):
                    assert (stream_id, query_id) in reported, (
                        f"false negative: oracle matches ({stream_id}, "
                        f"{query_id}) but the filter dropped it"
                    )

    @invariant()
    def verified_matches_equal_oracle(self):
        truth = {
            (stream_id, query_id)
            for stream_id, mirror in self.mirrors.items()
            for query_id, query in self.queries.items()
            if nx_subgraph_iso(query, mirror)
        }
        assert self.monitors["dsc"].verified_matches() == truth


TestSoakMachine = SoakMachine.TestCase
TestSoakMachine.settings = settings(
    max_examples=5, stateful_step_count=12, deadline=None
)


# ----------------------------------------------------------------------
# scripted long soak (slow tier): 1/2/4 workers x every engine x shm
# ----------------------------------------------------------------------
def scripted_soak(
    method: str, workers: int, operations: int, seed: int, shm: bool = False
) -> None:
    rng = random.Random(seed)
    queries = {f"q{i}": random_query(rng) for i in range(3)}
    next_query = len(queries)
    reference = StreamMonitor(dict(queries), method=method, depth_limit=DEPTH_LIMIT)
    mirrors: dict[str, LabeledGraph] = {}
    next_vertex = 0
    # Mid-soak elastic resharding: grow the pool at 40%, shrink back at
    # 70% (the 2 -> 4 -> 2 shape for the default worker count).
    rescale_at = (
        {int(operations * 0.4): workers * 2, int(operations * 0.7): workers}
        if workers >= 2
        else {}
    )
    # Scripted crash: SIGKILL every worker right after a live
    # registration — journal replay must land the query exactly once.
    kill_at = int(operations * 0.55)
    with ShardedMonitor(
        queries, method=method, depth_limit=DEPTH_LIMIT, num_workers=workers, shm=shm
    ) as sharded:
        for op_index in range(operations):
            target = rescale_at.get(op_index)
            if target is not None:
                sharded.rescale(target)
            roll = rng.random()
            if op_index == kill_at:
                query_id = f"q{next_query}"
                next_query += 1
                query = random_query(rng)
                queries[query_id] = query
                reference.register_query(query_id, query)
                sharded.register_query(query_id, query)
                for pid in sharded.worker_pids().values():
                    os.kill(pid, signal.SIGKILL)
                time.sleep(0.05)
            elif (roll < 0.08 and len(mirrors) < 5) or not mirrors:
                stream_id = f"s{op_index}"
                mirrors[stream_id] = LabeledGraph()
                reference.add_stream(stream_id)
                sharded.add_stream(stream_id)
            elif roll < 0.12 and len(mirrors) > 1:
                stream_id = rng.choice(sorted(mirrors))
                del mirrors[stream_id]
                reference.remove_stream(stream_id)
                sharded.remove_stream(stream_id)
            elif roll < 0.17 and len(queries) < 6:
                query_id = f"q{next_query}"
                next_query += 1
                query = random_query(rng)
                queries[query_id] = query
                reference.register_query(query_id, query)
                sharded.register_query(query_id, query)
            elif roll < 0.21 and len(queries) > 1:
                query_id = rng.choice(sorted(queries))
                del queries[query_id]
                reference.deregister_query(query_id)
                sharded.deregister_query(query_id)
            else:
                stream_id = rng.choice(sorted(mirrors))
                batch, next_vertex = random_batch(
                    rng, mirrors[stream_id], next_vertex
                )
                apply_operation(mirrors[stream_id], batch)
                reference.apply(stream_id, batch)
                sharded.apply(stream_id, batch)
            assert sharded.matches() == reference.matches(), (
                f"{method}/{workers}w/shm={shm} diverged at op {op_index}"
            )
            if op_index % 25 == 0:  # oracle spot check, amortized
                reported = reference.matches()
                for sid, mirror in mirrors.items():
                    for qid, query in queries.items():
                        if nx_subgraph_iso(query, mirror):
                            assert (sid, qid) in reported


@pytest.mark.slow
@pytest.mark.parametrize("method", ENGINE_METHODS)
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_long_soak(method, workers):
    scripted_soak(
        method,
        workers,
        operations=500,
        seed=0xBEEF + workers * 10 + ENGINE_METHODS.index(method),
    )


@pytest.mark.slow
@needs_shm_dir
@pytest.mark.parametrize("method", ENGINE_METHODS)
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_long_soak_shm(method, workers):
    scripted_soak(
        method,
        workers,
        operations=500,
        seed=0xFACE + workers * 10 + ENGINE_METHODS.index(method),
        shm=True,
    )


def test_short_soak_smoke():
    """Fast always-on slice of the long soak (same code path)."""
    scripted_soak("dsc", 2, operations=40, seed=0xBEEF)


@needs_shm_dir
def test_short_soak_smoke_shm():
    """The shm plane under live churn + a scripted SIGKILL, tier-1 sized."""
    scripted_soak("matrix", 2, operations=40, seed=0xF00D, shm=True)
