"""Tests for the dataset generators (ggen, molecules, reality, streams)."""

import random

import pytest

from repro.datasets import (
    DENSE,
    SPARSE,
    GGen,
    GGenConfig,
    RealityConfig,
    extract_connected_query,
    generate_graph_set,
    generate_molecule,
    generate_molecule_set,
    generate_reality_stream,
    generate_reality_streams,
    inflate_graph,
    make_query_set,
    random_connected_graph,
    synthesize_stream,
    synthesize_streams,
)
from repro.datasets.molecules import ATOMS
from repro.graph import LabeledGraph, edge_key
from repro.isomorphism import is_subgraph_isomorphic


class TestGGen:
    def test_deterministic_given_seed(self):
        a = generate_graph_set(5, seed=1)
        b = generate_graph_set(5, seed=1)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = generate_graph_set(5, seed=1)
        b = generate_graph_set(5, seed=2)
        assert any(x != y for x, y in zip(a, b))

    def test_graphs_connected(self):
        for graph in generate_graph_set(10, graph_size=15.0, seed=3):
            assert graph.is_connected()
            assert graph.num_vertices >= 3

    def test_label_vocabulary(self):
        config = GGenConfig(num_graphs=5, num_vertex_labels=3, num_edge_labels=2, seed=4)
        generator = GGen(config)
        for graph in generator.generate():
            assert {label for _, label in graph.vertex_items()} <= set(generator.vertex_labels)
            assert {label for _, _, label in graph.edges()} <= set(generator.edge_labels)

    def test_target_size_respected(self):
        generator = GGen(GGenConfig(num_graphs=1, seed=5))
        graph = generator.generate_graph(target_size=12)
        assert graph.num_vertices >= 12

    def test_seed_density_knob(self):
        sparse_gen = GGen(GGenConfig(num_graphs=3, seed=6, seed_extra_edge_ratio=0.0))
        dense_gen = GGen(GGenConfig(num_graphs=3, seed=6, seed_extra_edge_ratio=1.5))
        sparse_deg = sum(2 * s.num_edges / s.num_vertices for s in sparse_gen.seeds)
        dense_deg = sum(2 * s.num_edges / s.num_vertices for s in dense_gen.seeds)
        assert dense_deg > sparse_deg

    def test_random_connected_graph_singleton(self):
        graph = random_connected_graph(random.Random(0), 1, ["A"], ["x"])
        assert graph.num_vertices == 1
        assert graph.num_edges == 0


class TestMolecules:
    def test_statistics_near_aids_sample(self):
        molecules = generate_molecule_set(200, seed=1)
        mean_vertices = sum(g.num_vertices for g in molecules) / len(molecules)
        mean_edges = sum(g.num_edges for g in molecules) / len(molecules)
        assert 20 <= mean_vertices <= 30  # paper sample: 24.8
        assert 21 <= mean_edges <= 33  # paper sample: 26.8
        assert mean_edges >= mean_vertices * 0.95

    def test_connected_and_valence_bounded(self):
        valence = {element: v for element, _, v in ATOMS}
        for molecule in generate_molecule_set(30, seed=2):
            assert molecule.is_connected()
            for atom, label in molecule.vertex_items():
                # spanning-tree fallback may exceed valence only when the
                # generator had no capacity anywhere; allow slack of 1
                assert molecule.degree(atom) <= valence[label] + 1

    def test_carbon_dominates(self):
        histogram: dict = {}
        for molecule in generate_molecule_set(50, seed=3):
            for label, count in molecule.label_histogram().items():
                histogram[label] = histogram.get(label, 0) + count
        assert histogram["C"] > sum(v for k, v in histogram.items() if k != "C")

    def test_minimum_size(self):
        rng = random.Random(4)
        for _ in range(20):
            assert generate_molecule(rng, mean_size=4).num_vertices >= 4


class TestReality:
    def test_stream_shape(self):
        stream = generate_reality_stream(random.Random(1), timestamps=10)
        assert len(stream) == 10
        assert stream.initial.num_edges > 0

    def test_device_labels(self):
        config = RealityConfig(num_devices=30)
        stream = generate_reality_stream(random.Random(2), 5, config)
        for _, label in stream.initial.vertex_items():
            assert label.startswith("dev")

    def test_temporal_locality(self):
        config = RealityConfig(num_devices=50, mean_flips_per_timestamp=3.0)
        stream = generate_reality_stream(random.Random(3), 50, config)
        mean_changes = stream.total_changes() / (len(stream) - 1)
        assert mean_changes < 12  # few flips per timestamp

    def test_replayable(self):
        stream = generate_reality_stream(random.Random(4), 20)
        final = stream.final_graph()  # raises if any op is inconsistent
        assert final.num_vertices >= 0

    def test_multiple_streams(self):
        streams = generate_reality_streams(3, 5, seed=5)
        assert len(streams) == 3
        assert len({s.name for s in streams}) == 3


class TestStreamGen:
    def base(self):
        return random_connected_graph(random.Random(7), 8, ["A", "B"], ["-"], 0.4)

    def test_initial_is_base(self):
        base = self.base()
        stream = synthesize_stream(base, *DENSE, timestamps=5, rng=random.Random(1))
        assert stream.initial == base

    def test_replayable_all_modes(self):
        base = self.base()
        for kwargs in ({}, {"all_pairs": True}, {"extra_pair_factor": 1.0}):
            stream = synthesize_stream(
                base, *SPARSE, timestamps=8, rng=random.Random(2), **kwargs
            )
            stream.final_graph()  # raises on inconsistency

    def test_base_mode_only_toggles_base_edges(self):
        base = self.base()
        base_keys = {edge_key(u, v) for u, v, _ in base.edges()}
        stream = synthesize_stream(base, *DENSE, timestamps=10, rng=random.Random(3))
        for timestamp in range(len(stream)):
            for u, v, _ in stream.graph_at(timestamp).edges():
                assert edge_key(u, v) in base_keys

    def test_all_pairs_can_add_new_edges(self):
        base = self.base()
        base_keys = {edge_key(u, v) for u, v, _ in base.edges()}
        stream = synthesize_stream(
            base, 0.5, 0.1, timestamps=10, rng=random.Random(4), all_pairs=True
        )
        final_keys = {edge_key(u, v) for u, v, _ in stream.final_graph().edges()}
        assert final_keys - base_keys  # new pairs appeared

    def test_density_ordering(self):
        base = self.base()
        dense = synthesize_stream(base, *DENSE, timestamps=40, rng=random.Random(5))
        sparse = synthesize_stream(base, *SPARSE, timestamps=40, rng=random.Random(5))
        assert dense.final_graph().num_edges >= sparse.final_graph().num_edges

    def test_synthesize_streams_batch(self):
        bases = [self.base() for _ in range(3)]
        streams = synthesize_streams(bases, *DENSE, timestamps=4, seed=6)
        assert len(streams) == 3
        assert all(len(s) == 4 for s in streams)

    def test_inflate_graph(self):
        base = self.base()
        inflated = inflate_graph(base, 1.5, random.Random(7), ["A", "B"], ["-"])
        assert inflated.num_vertices == round(base.num_vertices * 1.5)
        assert inflated.is_connected()
        assert base.num_vertices == 8  # original untouched


class TestQueries:
    def test_extracted_query_is_contained(self):
        rng = random.Random(8)
        graph = random_connected_graph(rng, 10, ["A", "B", "C"], ["-"], 0.5)
        for _ in range(5):
            query = extract_connected_query(graph, 4, rng)
            assert query.is_connected()
            assert query.num_edges <= 4
            assert is_subgraph_isomorphic(query, graph)

    def test_query_size_capped_by_graph(self):
        rng = random.Random(9)
        tiny = random_connected_graph(rng, 3, ["A"], ["-"], 0.0)
        query = extract_connected_query(tiny, 50, rng)
        assert query.num_edges == tiny.num_edges

    def test_edgeless_graph_rejected(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        with pytest.raises(ValueError):
            extract_connected_query(graph, 2, random.Random(0))

    def test_make_query_set(self):
        graphs = generate_graph_set(5, graph_size=12.0, seed=10)
        queries = make_query_set(graphs, 4, 8, seed=11)
        assert len(queries) == 8
        assert all(q.is_connected() for q in queries)

    def test_make_query_set_requires_edges(self):
        lonely = LabeledGraph()
        lonely.add_vertex(0, "A")
        with pytest.raises(ValueError):
            make_query_set([lonely], 2, 1)
