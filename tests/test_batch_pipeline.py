"""The batched/coalesced NPV delta pipeline must be invisible to the
join engines' answers.

Three delivery paths feed the same operation stream to every engine:

* **coalesced** — the default: one ``on_batch_update`` per edge change /
  timestamp batch with cancelling deltas netted out;
* **legacy** — ``coalesce=False``: one ``on_dimension_delta`` per
  spliced tree edge (the pre-pipeline behavior);
* **fallback** — coalesced flushing into a listener without
  ``on_batch_update``: one ``on_dimension_delta`` per *net* entry.

All of them must produce candidate sets identical to each other, to the
brute-force dominance oracle, and (completeness, Lemma 4.2) must never
miss a VF2-confirmed pair.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EdgeChange, GraphChangeOperation
from repro.isomorphism.vf2 import SubgraphMatcher
from repro.join import ENGINES, QuerySet, StreamListenerAdapter, make_engine
from repro.join.base import JoinEngine
from repro.nnt import NNTIndex

from .conftest import random_labeled_graph
from .test_join_engines import oracle, small_queries


class LegacyAdapter:
    """Pre-pipeline listener shape: no ``on_batch_update`` — exercises
    the index's per-net-entry fallback delivery."""

    def __init__(self, engine: JoinEngine, stream_id) -> None:
        self.engine = engine
        self.stream_id = stream_id

    def on_vertex_added(self, vertex):
        self.engine.on_vertex_added(self.stream_id, vertex)

    def on_vertex_removed(self, vertex):
        self.engine.on_vertex_removed(self.stream_id, vertex)

    def on_dimension_delta(self, vertex, dim, delta):
        self.engine.on_dimension_delta(self.stream_id, vertex, dim, delta)


def temporal_locality_batch(rng: random.Random, index: NNTIndex) -> GraphChangeOperation:
    """One timestamp batch biased toward delete/re-insert churn (the
    reality-like pattern where most deltas cancel within the batch)."""
    graph = index.graph
    edges = list(graph.edges())
    changes = []
    deleted = []
    rng.shuffle(edges)
    for u, v, label in edges[: rng.randint(0, max(1, len(edges) // 2))]:
        changes.append(EdgeChange.delete(u, v))
        deleted.append((u, v, label))
    # Re-insert a random subset of what this same batch deletes: their
    # tree-edge deltas cancel exactly and must be coalesced away.
    for u, v, label in deleted:
        if rng.random() < 0.6:
            changes.append(
                EdgeChange.insert(
                    u, v, label, graph.vertex_label(u), graph.vertex_label(v)
                )
            )
    vertices = list(graph.vertices())
    if len(vertices) >= 2 and rng.random() < 0.7:
        u, v = rng.sample(vertices, 2)
        if not graph.has_edge(u, v) and not any(
            c.op == "ins" and {c.u, c.v} == {u, v} for c in changes
        ):
            # Labels supplied: the batch's deletions may have dropped an
            # endpoint (isolated vertices vanish), making this a re-creation.
            changes.append(
                EdgeChange.insert(
                    u, v, rng.choice("xy"), graph.vertex_label(u), graph.vertex_label(v)
                )
            )
    if rng.random() < 0.3:
        new_id = 100 + rng.randint(0, 20)
        if not graph.has_vertex(new_id) and vertices:
            anchor = rng.choice(vertices)
            changes.append(
                EdgeChange.insert(
                    anchor, new_id, "x", graph.vertex_label(anchor), rng.choice("ABC")
                )
            )
    return GraphChangeOperation(changes)


def _attach(engines, index, adapter_cls):
    for sid_engine in engines.values():
        sid_engine.register_stream(0, index.npvs)
        index.add_listener(adapter_cls(sid_engine, 0))


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 100_000), min_size=2, max_size=12))
def test_property_delivery_paths_agree(seeds):
    rng = random.Random(77)
    query_set = QuerySet(small_queries(rng, count=3), depth_limit=2)
    base = random_labeled_graph(rng, 6, extra_edges=3)

    paths = {
        "coalesced": (NNTIndex(base, depth_limit=2), StreamListenerAdapter),
        "legacy": (NNTIndex(base, depth_limit=2, coalesce=False), StreamListenerAdapter),
        "fallback": (NNTIndex(base, depth_limit=2), LegacyAdapter),
    }
    engines = {
        path: {name: make_engine(name, query_set) for name in ENGINES}
        for path in paths
    }
    for path, (index, adapter_cls) in paths.items():
        _attach(engines[path], index, adapter_cls)

    for seed in seeds:
        batches = {
            path: temporal_locality_batch(random.Random(seed), index)
            for path, (index, _) in paths.items()
        }
        # Identical graphs produce identical batches; apply each path's own.
        assert len({b.changes for b in batches.values()}) == 1
        for path, (index, _) in paths.items():
            index.apply(batches[path])

    reference_index = paths["coalesced"][0]
    reference_index.check_integrity()
    expected = oracle({0: reference_index}, query_set)
    for path, path_engines in engines.items():
        for name, engine in path_engines.items():
            assert engine.candidates() == expected, (path, name)
    # Completeness against exact isomorphism: every VF2-confirmed pair
    # must survive the filter in every engine under every delivery path.
    matcher = SubgraphMatcher(reference_index.graph)
    for query_id, query in query_set.queries.items():
        if matcher.is_subgraph(query):
            assert (0, query_id) in expected


def test_coalescing_cancels_delete_reinsert_batches():
    """A batch that deletes and re-inserts the same edges must deliver
    zero deltas under coalescing (and plenty under legacy delivery).

    The stream graph is a clique so no deletion isolates a vertex —
    vertex removal purges its queued deltas, which would legitimately
    leave the re-creation deltas unmatched."""
    from repro.graph import LabeledGraph

    base = LabeledGraph.from_vertices_and_edges(
        [(i, "ABC"[i % 3]) for i in range(5)],
        [(i, j, "x") for i in range(5) for j in range(i + 1, 5)],
    )
    coalesced = NNTIndex(base, depth_limit=3)
    legacy = NNTIndex(base, depth_limit=3, coalesce=False)
    edges = list(base.edges())[:3]
    batch = GraphChangeOperation(
        [EdgeChange.delete(u, v) for u, v, _ in edges]
        + [
            EdgeChange.insert(u, v, label, base.vertex_label(u), base.vertex_label(v))
            for u, v, label in edges
        ]
    )
    for index in (coalesced, legacy):
        index.apply(batch)
        index.check_integrity()
    assert coalesced.npvs == legacy.npvs
    assert coalesced.stats["deltas_delivered"] == 0
    assert legacy.stats["deltas_delivered"] > 0


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 100_000), min_size=1, max_size=10))
def test_property_matrix_never_drops_vf2_pair(seeds):
    """Soundness of the dense engine: a VF2-confirmed (stream, query)
    pair is always in the matrix engine's candidate set."""
    rng = random.Random(31)
    queries = small_queries(rng, count=4)
    query_set = QuerySet(queries, depth_limit=3)
    engine = make_engine("matrix", query_set)
    index = NNTIndex(random_labeled_graph(rng, 7, extra_edges=3), depth_limit=3)
    engine.register_stream("s", index.npvs)
    index.add_listener(StreamListenerAdapter(engine, "s"))
    for seed in seeds:
        index.apply(temporal_locality_batch(random.Random(seed), index))
        matcher = SubgraphMatcher(index.graph)
        for query_id, query in queries.items():
            if matcher.is_subgraph(query):
                assert engine.is_candidate("s", query_id), query_id


def test_running_tree_node_counter_matches_recount():
    """`num_tree_nodes` (the O(1) stats counter) must track the node
    index exactly through arbitrary churn."""
    rng = random.Random(13)
    index = NNTIndex(random_labeled_graph(rng, 5, extra_edges=2), depth_limit=3)
    for seed in range(25):
        index.apply(temporal_locality_batch(random.Random(seed), index))
        recount = sum(len(bucket) for bucket in index.node_index.values())
        assert index.num_tree_nodes == recount
    index.check_integrity()
