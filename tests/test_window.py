"""Tests for the sliding-window monitor."""

import random

import pytest

from repro import LabeledGraph
from repro.core.window import SlidingWindowMonitor


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, "-")
    return graph


def make_monitor(window=3):
    return SlidingWindowMonitor(
        {"ab": chain(["A", "B"]), "abc": chain(["A", "B", "C"])}, window=window
    )


class TestBasics:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor({}, window=0)

    def test_observe_creates_match(self):
        monitor = make_monitor()
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        assert monitor.matches() == {("s", "ab")}
        assert monitor.verified_matches() == {("s", "ab")}

    def test_expiry_removes_match(self):
        monitor = make_monitor(window=2)
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        assert monitor.tick("s") == 0
        assert monitor.matches() == {("s", "ab")}
        assert monitor.tick("s") == 1  # lease ends exactly at window ticks
        assert monitor.matches() == set()
        assert monitor.graph("s").num_vertices == 0

    def test_reobservation_refreshes_lease(self):
        monitor = make_monitor(window=2)
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        monitor.tick("s")
        monitor.observe("s", 1, 2, "-")  # refresh, no labels needed
        monitor.tick("s")
        assert monitor.matches() == {("s", "ab")}  # still alive
        monitor.tick("s")
        assert monitor.matches() == set()

    def test_retract(self):
        monitor = make_monitor()
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        monitor.retract("s", 2, 1)  # order-insensitive
        assert monitor.matches() == set()
        monitor.retract("s", 1, 2)  # idempotent

    def test_clock_per_stream(self):
        monitor = make_monitor()
        monitor.add_stream("x")
        monitor.add_stream("y")
        monitor.tick("x")
        assert monitor.clock("x") == 1
        assert monitor.clock("y") == 0

    def test_remove_stream(self):
        monitor = make_monitor()
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        monitor.remove_stream("s")
        assert monitor.matches() == set()
        with pytest.raises(KeyError):
            monitor.clock("s")


class TestWindowSemantics:
    def test_pattern_forms_within_window_only(self):
        monitor = make_monitor(window=2)
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        monitor.tick("s")
        monitor.tick("s")  # (1,2) expired
        monitor.observe("s", 2, 3, "-", "B", "C")
        # the two observations never coexist: no A-B-C match
        assert ("s", "abc") not in monitor.matches()

    def test_pattern_forms_when_observations_overlap(self):
        monitor = make_monitor(window=3)
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        monitor.tick("s")
        monitor.observe("s", 2, 3, "-", None, "C")
        assert ("s", "abc") in monitor.matches()
        assert ("s", "abc") in monitor.verified_matches()

    def test_events_through_window(self):
        monitor = make_monitor(window=1)
        monitor.add_stream("s")
        monitor.observe("s", 1, 2, "-", "A", "B")
        events = monitor.events()
        assert [(e.kind, e.query_id) for e in events] == [("appeared", "ab")]
        monitor.tick("s")
        events = monitor.events()
        assert [(e.kind, e.query_id) for e in events] == [("vanished", "ab")]

    def test_randomized_window_equivalence(self):
        """The windowed graph equals a manually maintained mirror."""
        rng = random.Random(808)
        monitor = SlidingWindowMonitor({"ab": chain(["A", "B"])}, window=3)
        monitor.add_stream("s")
        live: dict = {}  # edge key -> expiry
        clock = 0
        for _ in range(120):
            roll = rng.random()
            if roll < 0.5:
                u, v = rng.sample(range(6), 2)
                monitor.observe("s", u, v, "-", "A" if u % 2 else "B", "A" if v % 2 else "B")
                live[frozenset((u, v))] = clock + 3
            else:
                clock += 1
                monitor.tick("s")
                live = {key: exp for key, exp in live.items() if exp > clock}
            graph = monitor.graph("s")
            assert {frozenset((u, v)) for u, v, _ in graph.edges()} == set(live)
