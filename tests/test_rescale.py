"""Elastic live resharding: ``ShardedMonitor.rescale`` must preserve
the exact union answer at every poll while the worker pool grows or
shrinks — including through worker deaths mid-rescale (recovery from
journal + checkpoint) and with the shared-memory plane attached."""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.datasets.stream_gen import synthesize_stream
from repro.graph import EdgeChange
from repro.runtime import ShardedMonitor, ShardRouter
from repro.runtime.shm import live_segments

from .conftest import random_labeled_graph

needs_shm_dir = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm to scan"
)


def small_queries(rng: random.Random, count: int = 3) -> dict:
    return {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(count)
    }


def small_streams(rng: random.Random, count: int, timestamps: int) -> dict:
    streams = {}
    for i in range(count):
        base = random_labeled_graph(rng, rng.randint(4, 7), extra_edges=2)
        streams[f"s{i}"] = synthesize_stream(
            base, 0.3, 0.2, timestamps, rng, all_pairs=True, name=f"s{i}"
        )
    return streams


def replay_with_rescales(
    sharded: ShardedMonitor,
    streams: dict,
    schedule: dict[int, int],
    oracle: StreamMonitor,
) -> None:
    """Replay, rescaling per ``schedule`` (timestamp -> target pool
    size) mid-stream, pinning answer equality at every poll."""
    for stream_id, stream in streams.items():
        sharded.add_stream(stream_id, stream.initial)
        oracle.add_stream(stream_id, stream.initial)
    assert sharded.matches() == oracle.matches()
    horizon = min(len(stream.operations) for stream in streams.values())
    for t in range(horizon):
        for stream_id, stream in streams.items():
            sharded.apply(stream_id, stream.operations[t])
            oracle.apply(stream_id, stream.operations[t])
        target = schedule.get(t)
        if target is not None:
            report = sharded.rescale(target)
            assert report["to"] == target
            assert sharded.num_workers == target
        assert sharded.matches() == oracle.matches(), f"diverged at t={t + 1}"


class TestRescale:
    def test_grow_then_shrink_mid_stream_matches_oracle(self):
        """The headline 2 -> 4 -> 2 path, mid-stream, exact at every poll."""
        rng = random.Random(81)
        queries = small_queries(rng)
        streams = small_streams(rng, count=6, timestamps=6)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            replay_with_rescales(sharded, streams, {1: 4, 3: 2}, oracle)
            assert sharded.stats()["rescale"]["count"] == 2

    def test_moves_only_streams_whose_owner_changed(self):
        rng = random.Random(82)
        queries = small_queries(rng)
        streams = small_streams(rng, count=8, timestamps=2)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
            before, after = ShardRouter(2), ShardRouter(4)
            expected_moves = sum(
                1
                for stream_id in streams
                if before.shard_for(stream_id) != after.shard_for(stream_id)
            )
            report = sharded.rescale(4)
            assert report["moved_streams"] == expected_moves
            # Consistent hashing: a 2 -> 4 rescale must not reshuffle
            # everything.
            assert report["moved_streams"] < len(streams)
            assert sorted(sharded.stream_ids()) == sorted(streams)

    def test_noop_and_invalid_targets(self):
        rng = random.Random(83)
        with ShardedMonitor(small_queries(rng), num_workers=2) as sharded:
            report = sharded.rescale(2)
            assert report == {
                "from": 2,
                "to": 2,
                "moved_streams": 0,
                "seconds": 0.0,
            }
            with pytest.raises(ValueError):
                sharded.rescale(0)

    def test_shrink_to_one_worker(self):
        rng = random.Random(84)
        queries = small_queries(rng)
        streams = small_streams(rng, count=4, timestamps=4)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(queries, method="dsc", num_workers=4) as sharded:
            replay_with_rescales(sharded, streams, {1: 1}, oracle)
            assert sharded.num_workers == 1
            assert set(sharded.worker_pids()) == {0}

    def test_events_continuous_across_rescale(self):
        """events() transitions must not glitch when ownership moves —
        a moved stream's pairs neither vanish nor re-appear."""
        rng = random.Random(85)
        queries = small_queries(rng)
        streams = small_streams(rng, count=5, timestamps=5)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            assert sharded.events() == oracle.events()
            horizon = min(len(s.operations) for s in streams.values())
            for t in range(horizon):
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                    oracle.apply(stream_id, stream.operations[t])
                if t == 2:
                    sharded.rescale(4)
                assert sharded.events() == oracle.events(), f"diverged at t={t + 1}"

    def test_rescale_survives_query_set_sizes(self):
        """A rescale right after construction (no streams) is legal."""
        rng = random.Random(86)
        with ShardedMonitor(small_queries(rng), num_workers=2) as sharded:
            assert sharded.rescale(3)["moved_streams"] == 0
            sharded.add_stream("s0", random_labeled_graph(rng, 4))
            assert sharded.matches() == sharded.matches()

    def test_rescale_counters_and_span(self):
        rng = random.Random(87)
        queries = small_queries(rng)
        previous = obs.set_registry(obs.Registry())
        was_enabled = obs.enabled()
        obs.enable()
        obs.clear_spans()
        try:
            with ShardedMonitor(queries, num_workers=2) as sharded:
                for i in range(6):
                    sharded.add_stream(f"s{i}", random_labeled_graph(rng, 4))
                report = sharded.rescale(4)
                assert report["seconds"] > 0
                summary = obs.get_registry().summary()
                assert summary["runtime.rescales"]["value"] == 1
                assert summary["runtime.workers"]["value"] == 4
                assert summary["runtime.rescale.active"]["value"] == 0
                assert (
                    summary["runtime.rescale.last_seconds"]["value"]
                    == pytest.approx(report["seconds"])
                )
                if report["moved_streams"]:
                    assert (
                        summary["runtime.streams_moved"]["value"]
                        == report["moved_streams"]
                    )
                assert any(
                    record.name == "runtime.rescale" for record in obs.spans()
                )
                stats = sharded.stats()
                assert stats["rescale"]["count"] == 1
                assert stats["rescale"]["active"] is False
                assert stats["rescale"]["last_seconds"] == pytest.approx(
                    report["seconds"]
                )
        finally:
            obs.set_registry(previous)
            obs.clear_spans()
            if not was_enabled:
                obs.disable()


class TestRescaleRecovery:
    def test_sigkill_during_rescale_recovers_exactly(self, tmp_path):
        """Workers SIGKILLed as a rescale begins: the deaths surface
        inside the rescale's export requests, recovery replays journal
        tails on top of the last checkpoint, and the handoff completes
        with zero false negatives."""
        rng = random.Random(91)
        queries = small_queries(rng)
        streams = small_streams(rng, count=6, timestamps=6)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(
            queries,
            method="dsc",
            num_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
        ) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            horizon = min(len(s.operations) for s in streams.values())
            for t in range(horizon):
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                    oracle.apply(stream_id, stream.operations[t])
                if t == 2:
                    sharded.checkpoint()
                if t == 3:
                    # Kill the whole pool right as the rescale starts:
                    # every export request lands on a dead worker.
                    for pid in sharded.worker_pids().values():
                        os.kill(pid, signal.SIGKILL)
                    time.sleep(0.05)
                    report = sharded.rescale(4)
                    assert report["to"] == 4
                    assert sharded.recovery_log.recoveries >= 1
                if t == 4:
                    sharded.rescale(2)
                assert sharded.matches() == oracle.matches(), f"t={t + 1}"
            summary = sharded.recovery_log.summary()
            assert summary["checkpoints"] == 2
            assert summary["replayed_commands"] >= 1

    def test_kill_all_after_rescale_recovers_from_journals(self):
        """The handoff is journaled: a post-rescale massacre rebuilds
        every shard (including moved streams) from journals alone."""
        rng = random.Random(92)
        queries = small_queries(rng)
        streams = small_streams(rng, count=6, timestamps=3)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            replay_with_rescales(sharded, streams, {1: 4}, oracle)
            for pid in sharded.worker_pids().values():
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.05)
            assert sharded.matches() == oracle.matches()
            assert sharded.recovery_log.recoveries >= 4

    def test_checkpoint_after_rescale_restores_new_layout(self, tmp_path):
        """Snapshots taken before a rescale describe a stale slice;
        recovery after the rescale must use the post-rescale checkpoint
        (the old pointer is invalidated)."""
        rng = random.Random(93)
        queries = small_queries(rng)
        streams = small_streams(rng, count=6, timestamps=3)
        oracle = StreamMonitor(queries, method="dsc")
        with ShardedMonitor(
            queries,
            method="dsc",
            num_workers=4,
            checkpoint_dir=tmp_path / "ckpt",
        ) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            sharded.checkpoint()
            sharded.rescale(2)  # shards 2..3 retire; their LATEST is retracted
            assert (tmp_path / "ckpt" / "shard_0" / "LATEST").exists()
            assert not (tmp_path / "ckpt" / "shard_3" / "LATEST").exists()
            sharded.checkpoint()
            horizon = min(len(s.operations) for s in streams.values())
            for t in range(horizon):
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                    oracle.apply(stream_id, stream.operations[t])
            for pid in sharded.worker_pids().values():
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.05)
            assert sharded.matches() == oracle.matches()


@needs_shm_dir
class TestRescaleWithShmPlane:
    def test_rescale_on_the_plane_stays_exact_and_leak_free(self):
        rng = random.Random(94)
        queries = small_queries(rng)
        streams = small_streams(rng, count=6, timestamps=6)
        oracle = StreamMonitor(queries, method="matrix")
        sharded = ShardedMonitor(queries, method="matrix", num_workers=2, shm=True)
        prefix = sharded._shm_base
        try:
            replay_with_rescales(sharded, streams, {1: 4, 3: 2}, oracle)
            import numpy as np

            for stream_id in streams:
                # A moved stream's new owner rebuilt its rows from the
                # exported graph, so row order may differ; the row
                # *content* must be identical.
                ours = np.sort(sharded.npv_rows(stream_id), axis=0)
                theirs = np.sort(oracle.engine.npv_rows(stream_id), axis=0)
                assert np.array_equal(ours, theirs)
            assert live_segments(prefix)
        finally:
            sharded.close()
        assert live_segments(prefix) == []

    def test_retired_shards_release_their_segments(self):
        rng = random.Random(95)
        queries = small_queries(rng)
        streams = small_streams(rng, count=6, timestamps=2)
        sharded = ShardedMonitor(queries, method="matrix", num_workers=4, shm=True)
        prefix = sharded._shm_base
        try:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
            sharded.matches()  # settle the fleet
            before = len(live_segments(prefix))
            sharded.rescale(2)
            sharded.matches()
            # 2 rings + 2 worker planes remain; the retired shards'
            # rings and swept segments are gone.
            after = len(live_segments(prefix))
            assert after < before
        finally:
            sharded.close()
        assert live_segments(prefix) == []
