"""Incremental NNT maintenance must always agree with a fresh rebuild.

These are the paper's Figures 4-5 procedures; the tests drive random
insert/delete sequences and check the full cross-structure invariants
(`NNTIndex.check_integrity`) plus listener-delta consistency.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EdgeChange, GraphChangeOperation, GraphError, LabeledGraph
from repro.nnt import NNTIndex, project_graph
from repro.nnt.projection import DimensionScheme

from .conftest import random_labeled_graph


def paper_graph() -> LabeledGraph:
    return LabeledGraph.from_vertices_and_edges(
        [(1, "A"), (2, "B"), (3, "C"), (4, "B"), (5, "C")],
        [(1, 2, "-"), (1, 3, "-"), (2, 3, "-"), (3, 4, "-"), (4, 5, "-")],
    )


class RecordingListener:
    """Mirrors NPVs from deltas; used to validate the listener protocol.

    With ``strict_removal`` (legacy per-delta delivery,
    ``coalesce=False``) a removed vertex's mirror must already be zero;
    under coalesced delivery the zeroing deltas are purged instead of
    flushed, so the mirror discards whatever remains — the contract the
    join engines implement.
    """

    def __init__(self, strict_removal=False):
        self.vectors = {}
        self.strict_removal = strict_removal

    def on_vertex_added(self, vertex):
        assert vertex not in self.vectors
        self.vectors[vertex] = {}

    def on_vertex_removed(self, vertex):
        remaining = self.vectors.pop(vertex)
        if self.strict_removal:
            assert remaining == {}

    def on_dimension_delta(self, vertex, dim, delta):
        vector = self.vectors[vertex]
        value = vector.get(dim, 0) + delta
        assert value >= 0
        if value:
            vector[dim] = value
        else:
            del vector[dim]


class TestInitialBuild:
    def test_matches_fresh_projection(self):
        graph = paper_graph()
        index = NNTIndex(graph, depth_limit=2)
        assert index.npvs == project_graph(graph, 2)
        index.check_integrity()

    def test_owns_a_copy_of_the_graph(self):
        graph = paper_graph()
        index = NNTIndex(graph, depth_limit=2)
        graph.remove_edge(1, 2)  # external mutation must not desync
        index.check_integrity()

    def test_empty_start(self):
        index = NNTIndex(depth_limit=3)
        assert index.npvs == {}
        index.check_integrity()

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            NNTIndex(depth_limit=0)


class TestInsert:
    def test_insert_between_existing(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        index.insert_edge(1, 4, "-")
        index.check_integrity()
        assert index.graph.has_edge(1, 4)

    def test_insert_creates_vertex(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        index.insert_edge(5, 6, "-", b_label="D")
        index.check_integrity()
        assert index.graph.vertex_label(6) == "D"
        assert 6 in index.trees

    def test_insert_new_vertex_without_label_fails(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        with pytest.raises(GraphError):
            index.insert_edge(5, 6, "-")

    def test_duplicate_edge_rejected(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        with pytest.raises(GraphError):
            index.insert_edge(1, 2, "-")

    def test_first_edge_of_empty_index(self):
        index = NNTIndex(depth_limit=2)
        index.insert_edge("a", "b", "-", "A", "B")
        index.check_integrity()
        assert index.npv("a") == {(1, "A", "B"): 1}
        assert index.npv("b") == {(1, "B", "A"): 1}


class TestDelete:
    def test_delete_edge(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        index.delete_edge(1, 3)
        index.check_integrity()
        assert not index.graph.has_edge(1, 3)

    def test_delete_missing_edge_rejected(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        with pytest.raises(GraphError):
            index.delete_edge(1, 4)

    def test_delete_isolating_drops_vertex(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        index.delete_edge(4, 5)
        index.check_integrity()
        assert not index.graph.has_vertex(5)
        assert 5 not in index.trees
        assert 5 not in index.npvs

    def test_delete_last_edge_empties_index(self):
        index = NNTIndex(depth_limit=2)
        index.insert_edge("a", "b", "-", "A", "B")
        index.delete_edge("a", "b")
        index.check_integrity()
        assert index.graph.num_vertices == 0
        assert index.npvs == {}


class TestBatches:
    def test_apply_runs_deletions_first(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        index.apply(
            GraphChangeOperation(
                [
                    EdgeChange.insert(2, 4, "-"),
                    EdgeChange.delete(3, 4),
                ]
            )
        )
        index.check_integrity()
        assert index.graph.has_edge(2, 4)
        assert not index.graph.has_edge(3, 4)

    def test_stats_accumulate(self):
        index = NNTIndex(paper_graph(), depth_limit=2)
        index.insert_edge(1, 4, "-")
        index.delete_edge(1, 4)
        assert index.stats["edges_inserted"] == 1
        assert index.stats["edges_deleted"] == 1
        assert index.stats["tree_nodes_added"] > 0
        assert index.stats["tree_nodes_removed"] > 0


class TestListeners:
    @pytest.mark.parametrize("coalesce", (True, False))
    def test_listener_mirror_tracks_npvs(self, coalesce):
        rng = random.Random(99)
        index = NNTIndex(paper_graph(), depth_limit=3, coalesce=coalesce)
        listener = RecordingListener(strict_removal=not coalesce)
        for vertex in index.graph.vertices():
            listener.vectors[vertex] = dict(index.npv(vertex))
        index.add_listener(listener)
        for _ in range(120):
            _random_step(rng, index)
        assert listener.vectors == index.npvs

    def test_no_notifications_during_initial_build(self):
        listener = RecordingListener()
        index = NNTIndex(depth_limit=2)
        index.add_listener(listener)
        # Listener attached before any change: sees everything from zero.
        index.insert_edge(1, 2, "-", "A", "B")
        assert listener.vectors == index.npvs


def _random_step(rng: random.Random, index: NNTIndex) -> None:
    edges = list(index.graph.edges())
    vertices = list(index.graph.vertices())
    if edges and rng.random() < 0.45:
        u, v, _ = rng.choice(edges)
        index.delete_edge(u, v)
    elif len(vertices) >= 2 and rng.random() < 0.8:
        u, v = rng.sample(vertices, 2)
        if not index.graph.has_edge(u, v):
            index.insert_edge(u, v, rng.choice(["-", "="]))
    else:
        new_id = max([v for v in vertices if isinstance(v, int)], default=0) + 1
        anchor = rng.choice(vertices) if vertices else None
        if anchor is None:
            index.insert_edge(new_id, new_id + 1, "-", "A", "B")
        else:
            index.insert_edge(anchor, new_id, "-", None, rng.choice(["A", "B", "C"]))


class TestFuzz:
    @pytest.mark.parametrize("depth", (1, 2, 3))
    def test_random_sequences_keep_integrity(self, depth):
        rng = random.Random(500 + depth)
        index = NNTIndex(random_labeled_graph(rng, 6, extra_edges=3), depth_limit=depth)
        for step in range(150):
            _random_step(rng, index)
            if step % 30 == 0:
                index.check_integrity()
        index.check_integrity()
        assert index.npvs == project_graph(index.graph, depth)

    def test_edge_label_scheme_fuzz(self):
        rng = random.Random(4242)
        scheme = DimensionScheme(include_edge_label=True)
        index = NNTIndex(
            random_labeled_graph(rng, 6, extra_edges=3), depth_limit=2, scheme=scheme
        )
        for _ in range(100):
            _random_step(rng, index)
        index.check_integrity()
        assert index.npvs == project_graph(index.graph, 2, scheme)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 10_000), min_size=5, max_size=40))
def test_property_operation_stream_consistency(seeds):
    """Any operation sequence leaves the index equal to a fresh build."""
    rng = random.Random(1)
    index = NNTIndex(depth_limit=2)
    index.insert_edge(0, 1, "-", "A", "B")
    for seed in seeds:
        _random_step(random.Random(seed), index)
        if index.graph.num_vertices == 0:
            index.insert_edge(0, 1, "-", "A", "B")
    assert index.npvs == project_graph(index.graph, 2)
    index.check_integrity()
