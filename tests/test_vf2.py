"""Tests for the exact subgraph isomorphism matcher, including an
independent networkx oracle on random inputs."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from networkx.algorithms import isomorphism as nxiso

from repro.graph import LabeledGraph
from repro.isomorphism import (
    SubgraphMatcher,
    are_isomorphic,
    find_all_subgraph_isomorphisms,
    find_subgraph_isomorphism,
    is_subgraph_isomorphic,
)

from .conftest import extract_connected_subgraph, graph_strategy, random_labeled_graph


def to_networkx(graph: LabeledGraph) -> nx.Graph:
    out = nx.Graph()
    for vertex, label in graph.vertex_items():
        out.add_node(vertex, label=label)
    for u, v, label in graph.edges():
        out.add_edge(u, v, label=label)
    return out


def nx_subgraph_iso(query: LabeledGraph, target: LabeledGraph) -> bool:
    """networkx monomorphism oracle with label matching."""
    matcher = nxiso.GraphMatcher(
        to_networkx(target),
        to_networkx(query),
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["label"] == b["label"],
    )
    return matcher.subgraph_is_monomorphic()


def path_graph(labels: list, edge_label: str = "x") -> LabeledGraph:
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, edge_label)
    return graph


class TestBasics:
    def test_empty_query_matches_anything(self):
        assert is_subgraph_isomorphic(LabeledGraph(), path_graph(["A"]))
        assert find_subgraph_isomorphism(LabeledGraph(), LabeledGraph()) == {}

    def test_single_vertex_label_match(self):
        query = path_graph(["A"])
        assert is_subgraph_isomorphic(query, path_graph(["B", "A"]))
        assert not is_subgraph_isomorphic(query, path_graph(["B", "C"]))

    def test_path_in_path(self):
        assert is_subgraph_isomorphic(path_graph(["A", "B"]), path_graph(["C", "A", "B"]))
        assert not is_subgraph_isomorphic(path_graph(["A", "A"]), path_graph(["A", "B", "A"]))

    def test_edge_labels_must_match(self):
        query = path_graph(["A", "B"], edge_label="x")
        target = path_graph(["A", "B"], edge_label="y")
        assert not is_subgraph_isomorphic(query, target)

    def test_monomorphism_not_induced(self):
        # Query path A-B-C maps into triangle A-B-C even though the
        # triangle has the extra (A,C) edge: monomorphism semantics.
        query = path_graph(["A", "B", "C"])
        triangle = path_graph(["A", "B", "C"])
        triangle.add_edge(0, 2, "x")
        assert is_subgraph_isomorphic(query, triangle)

    def test_too_many_vertices(self):
        assert not is_subgraph_isomorphic(path_graph(["A", "A", "A"]), path_graph(["A", "A"]))

    def test_mapping_is_valid(self):
        query = path_graph(["A", "B", "C"])
        target = path_graph(["Z", "A", "B", "C"])
        mapping = find_subgraph_isomorphism(query, target)
        assert mapping is not None
        assert len(set(mapping.values())) == len(mapping)  # injective
        for u, v, label in query.edges():
            assert target.edge_label(mapping[u], mapping[v]) == label
        for vertex in query.vertices():
            assert target.vertex_label(mapping[vertex]) == query.vertex_label(vertex)

    def test_find_all_counts_symmetries(self):
        # A-A edge in a triangle of A's: 6 ordered embeddings of the edge
        # ... but the triangle has 3 edges x 2 directions = 6.
        query = path_graph(["A", "A"])
        triangle = path_graph(["A", "A", "A"])
        triangle.add_edge(0, 2, "x")
        assert len(find_all_subgraph_isomorphisms(query, triangle)) == 6

    def test_find_all_limit(self):
        query = path_graph(["A", "A"])
        triangle = path_graph(["A", "A", "A"])
        triangle.add_edge(0, 2, "x")
        assert len(find_all_subgraph_isomorphisms(query, triangle, limit=2)) == 2

    def test_disconnected_query(self):
        query = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B"), (2, "C"), (3, "C")],
            [(0, 1, "x"), (2, 3, "x")],
        )
        target = path_graph(["A", "B", "C", "C"])
        assert is_subgraph_isomorphic(query, target)

    def test_matcher_reuse(self):
        target = path_graph(["A", "B", "C"])
        matcher = SubgraphMatcher(target)
        assert matcher.is_subgraph(path_graph(["A", "B"]))
        assert matcher.is_subgraph(path_graph(["B", "C"]))
        assert not matcher.is_subgraph(path_graph(["C", "A"]))


class TestAreIsomorphic:
    def test_same_graph(self):
        assert are_isomorphic(path_graph(["A", "B"]), path_graph(["A", "B"]))

    def test_relabeled_ids(self):
        graph = path_graph(["A", "B", "C"])
        assert are_isomorphic(graph, graph.relabeled({0: "x", 1: "y", 2: "z"}))

    def test_size_mismatch(self):
        assert not are_isomorphic(path_graph(["A", "B"]), path_graph(["A", "B", "C"]))

    def test_histogram_mismatch(self):
        assert not are_isomorphic(path_graph(["A", "B"]), path_graph(["A", "A"]))


class TestAgainstNetworkx:
    @pytest.mark.parametrize("trial", range(15))
    def test_random_pairs_agree_with_networkx(self, trial):
        rng = random.Random(1000 + trial)
        target = random_labeled_graph(rng, rng.randint(4, 9), extra_edges=rng.randint(0, 4))
        query = random_labeled_graph(rng, rng.randint(2, 5), extra_edges=rng.randint(0, 2))
        assert is_subgraph_isomorphic(query, target) == nx_subgraph_iso(query, target)

    @pytest.mark.parametrize("trial", range(10))
    def test_extracted_subgraphs_always_found(self, trial):
        rng = random.Random(2000 + trial)
        target = random_labeled_graph(rng, rng.randint(5, 10), extra_edges=rng.randint(0, 5))
        query = extract_connected_subgraph(rng, target, rng.randint(2, 4))
        assert is_subgraph_isomorphic(query, target)
        assert nx_subgraph_iso(query, target)


@settings(max_examples=30, deadline=None)
@given(graph_strategy(max_vertices=7), graph_strategy(max_vertices=5))
def test_property_agrees_with_networkx(target, query):
    assert is_subgraph_isomorphic(query, target) == nx_subgraph_iso(query, target)


@settings(max_examples=30, deadline=None)
@given(graph_strategy(min_vertices=2, max_vertices=8))
def test_property_graph_contains_itself(graph):
    assert is_subgraph_isomorphic(graph, graph)
