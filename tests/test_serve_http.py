"""The HTTP observability endpoint and its server integration.

A real :class:`ReproServer` runs with ``http_host`` configured and is
scraped over a raw socket — the responses must parse as HTTP/1.0 and
``/metrics`` must round-trip through the same golden Prometheus parser
that pins ``render_prometheus`` (``tests/test_obs.py``).  The drain test
asserts the split-brain health contract: ``/healthz`` stays 200 (the
process lives) while ``/readyz`` turns 503 (take it out of rotation).
The overload test scripts a rejection storm and reads the breach back
out of ``/slo`` and the ``repro top`` overload panel.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.dashboard import render_dashboard
from repro.graph.operations import EdgeChange, GraphChangeOperation
from repro.obs import Registry, SloRule
from repro.serve import ObservabilityEndpoint, ReproServer, ServeConfig
from repro.serve.session import collect_obs_summary

from .test_obs import parse_prometheus_text
from .test_serve_server import connect, edge_query, ins, send_cmd


@pytest.fixture(autouse=True)
def clean_obs():
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


async def http_get(
    port: int, path: str, method: str = "GET"
) -> tuple[int, dict[str, str], bytes]:
    """One raw HTTP exchange against the loopback endpoint."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {path} HTTP/1.0\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(": ")
        headers[key.lower()] = value
    return status, headers, body


def http_config(**overrides) -> ServeConfig:
    base = dict(http_host="127.0.0.1", http_port=0)
    base.update(overrides)
    return ServeConfig(**base)


# ----------------------------------------------------------------------
# the endpoint in isolation
# ----------------------------------------------------------------------
class TestEndpoint:
    def run_on(self, check, **kwargs):
        async def scenario():
            endpoint = ObservabilityEndpoint(
                "127.0.0.1",
                0,
                summary=lambda: obs.get_registry().summary(),
                ready=lambda: True,
                **kwargs,
            )
            await endpoint.start()
            try:
                return await check(endpoint.address[1])
            finally:
                await endpoint.stop()

        return asyncio.run(scenario())

    def test_unknown_path_is_404(self):
        status, _, _ = self.run_on(lambda port: http_get(port, "/nope"))
        assert status == 404

    def test_non_get_is_405(self):
        status, _, _ = self.run_on(
            lambda port: http_get(port, "/metrics", method="POST")
        )
        assert status == 405

    def test_unconfigured_slo_and_timeline_are_404(self):
        async def check(port):
            return await http_get(port, "/slo"), await http_get(
                port, "/timeline.json"
            )

        (slo_status, _, _), (timeline_status, _, _) = self.run_on(check)
        assert slo_status == 404
        assert timeline_status == 404

    def test_query_strings_are_stripped(self):
        status, _, body = self.run_on(lambda port: http_get(port, "/healthz?x=1"))
        assert status == 200
        assert body == b"ok\n"

    def test_content_length_matches_body(self):
        obs.counter("unit.hits", "test counter").inc(3)
        status, headers, body = self.run_on(lambda port: http_get(port, "/metrics"))
        assert status == 200
        assert int(headers["content-length"]) == len(body)
        assert headers["connection"] == "close"
        assert "version=0.0.4" in headers["content-type"]


# ----------------------------------------------------------------------
# server integration: every route against live traffic
# ----------------------------------------------------------------------
class TestServerEndpoint:
    def test_all_routes_after_real_traffic(self):
        queries = {"q0": edge_query()}

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor, http_config(timeline_interval=0.05))
            await server.start()
            reader, writer, _ = await connect(server.port)
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))["ok"]
            assert (await send_cmd(reader, writer, ins("s", 1, 2)))["ok"]
            assert (await send_cmd(reader, writer, {"cmd": "commit"}))["ok"]
            await asyncio.sleep(0.15)  # a few sampler ticks
            port = server.http_port
            results = {
                path: await http_get(port, path)
                for path in (
                    "/metrics",
                    "/healthz",
                    "/readyz",
                    "/slo",
                    "/timeline.json",
                    "/trace",
                )
            }
            await send_cmd(reader, writer, {"cmd": "quit"})
            await server.drain()
            return results

        results = asyncio.run(scenario())
        assert all(status == 200 for status, _, _ in results.values())

        # /metrics round-trips through the golden Prometheus parser and
        # carries the serve-layer series the scrape contract promises.
        samples = parse_prometheus_text(results["/metrics"][2].decode())
        assert "repro_serve_admitted_total" in samples
        assert "repro_serve_commits_total" in samples
        assert any(name.startswith("repro_slo_state") for name in samples)

        assert results["/healthz"][2] == b"ok\n"
        assert results["/readyz"][2] == b"ready\n"

        slo_doc = json.loads(results["/slo"][2])
        assert slo_doc["worst"] in ("ok", "warn", "breach")
        assert {rule["name"] for rule in slo_doc["rules"]} >= {
            "commit-latency-p95",
            "reject-rate",
        }

        timeline_doc = json.loads(results["/timeline.json"][2])
        assert timeline_doc["sampled"] >= 2
        assert timeline_doc["samples"]

        trace_doc = json.loads(results["/trace"][2])
        assert trace_doc["traceEvents"]
        assert 'filename="repro-trace.json"' in results["/trace"][1].get(
            "content-disposition", ""
        )

    def test_readyz_turns_503_during_drain_while_healthz_stays_200(self):
        queries = {"q0": edge_query()}

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor, http_config(drain_grace=0.4))
            await server.start()
            port = server.http_port
            before, _, _ = await http_get(port, "/readyz")
            drain = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0.1)  # inside the drain-grace window
            ready_status, _, ready_body = await http_get(port, "/readyz")
            health_status, _, health_body = await http_get(port, "/healthz")
            await drain
            return before, ready_status, ready_body, health_status, health_body

        before, ready_status, ready_body, health_status, health_body = asyncio.run(
            scenario()
        )
        assert before == 200
        assert ready_status == 503
        assert ready_body == b"draining\n"
        assert health_status == 200
        assert health_body == b"ok\n"

    def test_endpoint_is_closed_after_drain(self):
        queries = {"q0": edge_query()}

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor, http_config())
            await server.start()
            port = server.http_port
            await server.drain()
            with pytest.raises((ConnectionError, OSError)):
                await http_get(port, "/healthz")

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# scripted overload -> /slo breach + top overload panel (acceptance)
# ----------------------------------------------------------------------
class TestOverloadScript:
    def test_rejection_storm_breaches_slo_and_renders_overload_panel(self):
        queries = {"q0": edge_query()}
        tight_rules = (
            SloRule(
                "reject-rate",
                "serve.rejected",
                "rate_max",
                0.0,
                warn_after=1,
                breach_after=1,
                window=60.0,
                description="any rejection at all breaches",
            ),
        )

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(
                monitor,
                http_config(
                    rate=0.5,
                    burst=1.0,
                    timeline_interval=0.05,
                    slo_rules=tight_rules,
                ),
            )
            await server.start()
            reader, writer, _ = await connect(server.port)
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))["ok"]
            await asyncio.sleep(0.12)  # let the baseline sample land first
            rejected = 0
            for _ in range(8):  # tokens accrue at 0.5/s: almost all rejected
                reply = await send_cmd(reader, writer, ins("s", 1, 2))
                rejected += 0 if reply["ok"] else 1
            await asyncio.sleep(0.3)  # several sample+evaluate ticks
            _, _, slo_body = await http_get(server.http_port, "/slo")
            summary = collect_obs_summary(monitor)
            frame = render_dashboard(summary, timeline=server.timeline)
            await send_cmd(reader, writer, {"cmd": "quit"})
            await server.drain()
            return rejected, json.loads(slo_body), frame

        rejected, slo_doc, frame = asyncio.run(scenario())
        assert rejected >= 5
        assert slo_doc["worst"] == "breach"
        (rule,) = slo_doc["rules"]
        assert rule["state"] == "breach"
        assert rule["value"] > 0.0
        # The scripted breach reaches the top panel too.
        assert "overload timeline" in frame
        assert "rejected" in frame
        assert "breaker" in frame


# ----------------------------------------------------------------------
# merged cross-worker registries keep scraping after query churn
# ----------------------------------------------------------------------
class TestMergedScrapeAfterChurn:
    def test_label_sets_and_ordering_survive_query_churn(self):
        from repro.runtime import ShardedMonitor

        queries = {"q0": edge_query()}
        with ShardedMonitor(queries, num_workers=2) as sharded:
            sharded.add_stream("s0", edge_query())  # carries a matching edge
            sharded.add_query("q1", edge_query())
            sharded.apply(
                "s0",
                GraphChangeOperation([EdgeChange("ins", 40, 41, "x", "A", "B")]),
            )
            sharded.matches()
            before = parse_prometheus_text(
                obs.render_prometheus(collect_obs_summary(sharded), prefix="repro")
            )
            sharded.remove_query("q0")
            sharded.add_query("q2", edge_query())
            sharded.apply(
                "s0",
                GraphChangeOperation([EdgeChange("ins", 50, 51, "x", "A", "B")]),
            )
            sharded.matches()
            after_text = obs.render_prometheus(
                collect_obs_summary(sharded), prefix="repro"
            )
            # The golden parser enforces the structural rules (TYPE-
            # before-samples, cumulative buckets, +Inf == _count) over
            # the merged, churned registries.
            after = parse_prometheus_text(after_text)
            # No series vanished: per-worker registries are lifetime-
            # cumulative, so churn only adds label sets.
            for name, series in before.items():
                assert set(series) <= set(after[name]), name
            # The churned queries mint their own label sets, kept
            # distinct through the cross-worker merge.
            candidates = after["repro_filter_candidates_total"]
            queries_seen = {
                label
                for labels in candidates
                for label in labels.strip("{}").split(",")
                if label.startswith("query=")
            }
            assert 'query="q2"' in queries_seen
            assert 'query="q0"' in queries_seen  # pre-removal history kept
            # Rendering is deterministic: a second render is identical.
            assert after_text == obs.render_prometheus(
                collect_obs_summary(sharded), prefix="repro"
            )
