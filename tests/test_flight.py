"""The crash flight recorder: ring, journal, rotation, dumps, signals.

The headline guarantee is the SIGKILL test: a worker killed with no
chance to run handlers still leaves its per-command JSONL journal
readable up to the final pre-crash event, because every ``note()``
write-and-flushes eagerly.  The SIGUSR2 and dump tests cover the
cooperative snapshot channel.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time

import pytest

from repro import obs
from repro.graph.operations import EdgeChange, GraphChangeOperation
from repro.obs import FlightRecorder, Registry, install_signal_dump
from repro.runtime import ShardedMonitor

from .conftest import random_labeled_graph


@pytest.fixture(autouse=True)
def clean_obs():
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


# ----------------------------------------------------------------------
# in-memory ring
# ----------------------------------------------------------------------
class TestRing:
    def test_ring_is_bounded_and_ordered(self):
        recorder = FlightRecorder(capacity=3, clock=FakeClock())
        for i in range(5):
            recorder.note("tick", i=i)
        events = recorder.events()
        assert [event["i"] for event in events] == [2, 3, 4]
        assert [event["seq"] for event in events] == [3, 4, 5]

    def test_disabled_records_nothing(self):
        recorder = FlightRecorder(capacity=4)
        obs.disable()
        assert recorder.note("ghost") is None
        assert recorder.events() == []

    def test_notes_mint_the_flight_counter(self):
        recorder = FlightRecorder(capacity=4)
        recorder.note("a")
        recorder.note("b")
        entry = obs.get_registry().summary()["flight.events"]
        assert entry["value"] == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# the disk journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_notes_are_flushed_immediately(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(path, capacity=8)
        recorder.note("refusal", code="overloaded")
        # Read the file back WITHOUT closing: a SIGKILL would not close
        # either, so durability must not depend on close().
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "refusal"
        recorder.close()

    def test_rotation_keeps_a_bounded_tail(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(path, capacity=2, clock=FakeClock())
        for i in range(10):  # rotates at every 8 lines
            recorder.note("tick", i=i)
        recorder.close()
        rotated = path.with_name(path.name + ".old")
        assert rotated.exists()
        assert len(path.read_text().splitlines()) == 2
        # read() stitches the rotated tail back in front, in order.
        events = FlightRecorder.read(path)
        assert [event["i"] for event in events] == list(range(10))

    def test_read_missing_rotation_is_fine(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(path, capacity=8)
        recorder.note("only")
        recorder.close()
        events = FlightRecorder.read(path)
        assert [event["kind"] for event in events] == ["only"]


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestDump:
    def test_dump_carries_events_spans_and_metrics(self, tmp_path):
        recorder = FlightRecorder(capacity=8, clock=FakeClock())
        recorder.note("shed", session="s-1")
        with obs.span("unit.work"):
            pass
        target = recorder.dump(tmp_path / "flight.json", reason="test")
        doc = FlightRecorder.read(target)
        assert doc["reason"] == "test"
        assert doc["pid"] == os.getpid()
        assert [event["kind"] for event in doc["events"]] == ["shed"]
        assert any(span["name"] == "unit.work" for span in doc["spans"])
        assert "flight.events" in doc["metrics"]

    def test_dump_is_atomic(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        target = recorder.dump(tmp_path / "flight.json", reason="x")
        assert not target.with_name(target.name + ".tmp").exists()

    def test_sigusr2_dumps_a_snapshot(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        recorder.note("before-signal")
        previous = signal.getsignal(signal.SIGUSR2)
        try:
            assert install_signal_dump(recorder, tmp_path, label="testproc")
            os.kill(os.getpid(), signal.SIGUSR2)
            target = tmp_path / "flight-testproc-sigusr2.json"
            assert target.exists()
            doc = FlightRecorder.read(target)
            assert doc["reason"] == "sigusr2"
            assert [event["kind"] for event in doc["events"]] == ["before-signal"]
        finally:
            signal.signal(signal.SIGUSR2, previous)


# ----------------------------------------------------------------------
# the SIGKILL guarantee (acceptance criterion)
# ----------------------------------------------------------------------
class TestWorkerJournal:
    def _queries(self, rng: random.Random) -> dict:
        return {"q0": random_labeled_graph(rng, 3, extra_edges=1)}

    def test_sigkilled_worker_leaves_readable_precrash_journal(self, tmp_path):
        rng = random.Random(7)
        with ShardedMonitor(
            self._queries(rng), num_workers=1, flight_dir=tmp_path
        ) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 5, extra_edges=2))
            sharded.apply(
                "s0",
                GraphChangeOperation(
                    [EdgeChange("ins", 100, 101, "x", "A", "B")]
                ),
            )
            sharded.matches()  # barrier: both commands fully processed
            pid = sharded.worker_pids()[0]
            assert pid is not None
            os.kill(pid, signal.SIGKILL)
            time.sleep(0.05)
            journal = tmp_path / "flight-shard0.jsonl"
            assert journal.exists()
            events = FlightRecorder.read(journal)
            # Per-command notes survived the kill, flushed pre-crash.
            verbs = [e["verb"] for e in events if e["kind"] == "command"]
            assert "add_stream" in verbs
            assert "apply" in verbs
            spans = [e.get("span") for e in events if e["kind"] == "command"]
            assert any(spans), "command notes should carry their span name"
            # Recovery respawns the shard and the journal keeps growing.
            assert sharded.matches() is not None

    def test_worker_commands_journal_in_order(self, tmp_path):
        rng = random.Random(8)
        with ShardedMonitor(
            self._queries(rng), num_workers=1, flight_dir=tmp_path
        ) as sharded:
            sharded.add_stream("s0", random_labeled_graph(rng, 4, extra_edges=1))
            sharded.matches()
        events = FlightRecorder.read(tmp_path / "flight-shard0.jsonl")
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        assert all("wall" in event for event in events)
