"""Property test: ``save_monitor``/``restore_monitor`` round-trips a
monitor that answers identically at every timestamp — including graphs
with int vertex ids, which the text format serializes as strings and
the manifest's id-kind record must restore exactly."""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EdgeChange, LabeledGraph, StreamMonitor
from repro.core.checkpoint import load_monitor, save_monitor
from repro.datasets.stream_gen import synthesize_stream

from .conftest import random_labeled_graph


def _scenario(seed: int, timestamps: int = 4):
    """A deterministic monitor + valid update schedule from one seed.

    Vertex ids are ints on purpose: they exercise the manifest's
    id-kind round-trip (a naive restore would turn them into strings
    and silently change every NPV)."""
    rng = random.Random(seed)
    queries = {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(rng.randint(1, 3))
    }
    streams = {}
    for i in range(rng.randint(1, 3)):
        base = random_labeled_graph(rng, rng.randint(3, 6), extra_edges=1)
        streams[f"s{i}"] = synthesize_stream(
            base, 0.3, 0.2, timestamps, rng, all_pairs=True, name=f"s{i}"
        )
    return queries, streams


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_round_trip_answers_identically_at_every_timestamp(seed, tmp_path_factory):
    queries, streams = _scenario(seed)
    monitor = StreamMonitor(queries, method="dsc")
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)

    horizon = min(len(stream.operations) for stream in streams.values())
    for t in range(horizon + 1):
        directory = tmp_path_factory.mktemp("ckpt") / f"t{t}"
        save_monitor(monitor, directory)
        restored = load_monitor(directory)
        assert restored.matches() == monitor.matches(), f"diverged at t={t}"
        if t == horizon:
            break
        # Advance BOTH monitors one timestamp: the restored one must not
        # only answer like the original now, but keep doing so under
        # further updates (engine state re-derivation is exact).
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[t])
            restored.apply(stream_id, stream.operations[t])
        assert restored.matches() == monitor.matches(), f"diverged after t={t + 1}"


class TestIntIdRoundTrip:
    def _int_monitor(self):
        query = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B")], [(0, 1, "-")]
        )
        stream_graph = LabeledGraph.from_vertices_and_edges(
            [(10, "A"), (11, "B"), (12, "C")], [(10, 11, "-"), (11, 12, "-")]
        )
        monitor = StreamMonitor({7: query}, method="dsc")
        monitor.add_stream(3, stream_graph)
        return monitor

    def test_vertex_ids_restore_as_ints(self, tmp_path):
        monitor = self._int_monitor()
        save_monitor(monitor, tmp_path / "ckpt")
        restored = load_monitor(tmp_path / "ckpt")
        assert set(restored.graph(3).vertices()) == {10, 11, 12}
        assert all(isinstance(v, int) for v in restored.graph(3).vertices())

    def test_manifest_records_id_kinds(self, tmp_path):
        monitor = self._int_monitor()
        save_monitor(monitor, tmp_path / "ckpt")
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["format"] == 1
        assert manifest["query_id_kinds"] == ["int"]
        assert manifest["stream_id_kinds"] == ["int"]

    def test_restored_monitor_extends_int_id_graphs(self, tmp_path):
        """An update addressing an existing int vertex must extend the
        restored graph, not silently create a parallel string vertex."""
        monitor = self._int_monitor()
        save_monitor(monitor, tmp_path / "ckpt")
        restored = load_monitor(tmp_path / "ckpt")
        update = EdgeChange.insert(12, 13, "-", None, "A")
        monitor.apply(3, update)
        restored.apply(3, update)
        assert restored.matches() == monitor.matches()
        assert restored.graph(3).num_vertices == monitor.graph(3).num_vertices == 4

    def test_string_ids_stay_strings(self, tmp_path):
        query = LabeledGraph.from_vertices_and_edges(
            [("a", "A"), ("b", "B")], [("a", "b", "-")]
        )
        monitor = StreamMonitor({"q": query}, method="dsc")
        monitor.add_stream("s", query.copy())
        save_monitor(monitor, tmp_path / "ckpt")
        restored = load_monitor(tmp_path / "ckpt")
        assert set(restored.graph("s").vertices()) == {"a", "b"}

    def test_mixed_ids_fall_back_to_strings(self, tmp_path):
        graph = LabeledGraph.from_vertices_and_edges(
            [(1, "A"), ("x", "B")], [(1, "x", "-")]
        )
        monitor = StreamMonitor({"q": graph.copy()}, method="dsc")
        monitor.add_stream("s", graph)
        save_monitor(monitor, tmp_path / "ckpt")
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["stream_id_kinds"] == ["str"]
        restored = load_monitor(tmp_path / "ckpt")
        assert set(restored.graph("s").vertices()) == {"1", "x"}
