"""Tests for the gIndex baseline (static and streaming forms)."""

import random

import pytest

from repro.baselines import (
    GIndex,
    GIndexConfig,
    GIndexStreamFilter,
    gindex1_config,
    gindex2_config,
)
from repro.graph import LabeledGraph
from repro.isomorphism import SubgraphMatcher

from .conftest import extract_connected_subgraph, random_labeled_graph


def chain(labels, edge_label="-"):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, edge_label)
    return graph


class TestConfig:
    def test_ratio_support(self):
        config = GIndexConfig(min_support_ratio=0.1)
        assert config.min_support(100) == 10
        assert config.min_support(3) == 1  # floor at 1

    def test_absolute_overrides_ratio(self):
        config = GIndexConfig(min_support_ratio=0.5, min_support_absolute=2)
        assert config.min_support(100) == 2

    def test_paper_presets(self):
        assert gindex1_config().max_fragment_edges == 10
        assert gindex1_config(6).max_fragment_edges == 6
        assert gindex2_config().max_fragment_edges == 3
        assert gindex2_config().min_support(50) == 1


class TestStaticGIndex:
    def make_db(self, rng, count=8):
        return {
            i: random_labeled_graph(rng, rng.randint(4, 7), extra_edges=rng.randint(0, 3))
            for i in range(count)
        }

    def test_features_mined(self, rng):
        index = GIndex(self.make_db(rng), gindex2_config())
        assert index.num_features > 0
        assert all(f.num_edges <= 3 for f in index.features)

    def test_candidates_subset_of_db(self, rng):
        db = self.make_db(rng)
        index = GIndex(db, gindex2_config())
        query = chain(["A", "B"])
        assert index.candidates_for(query) <= set(db)

    @pytest.mark.parametrize("trial", range(5))
    def test_no_false_negatives(self, trial):
        rng = random.Random(7700 + trial)
        db = self.make_db(rng)
        index = GIndex(db, GIndexConfig(max_fragment_edges=3, min_support_ratio=0.25))
        source = rng.choice(list(db))
        query = extract_connected_subgraph(rng, db[source], 3)
        truth = {
            graph_id
            for graph_id, graph in db.items()
            if SubgraphMatcher(graph).is_subgraph(query)
        }
        candidates = index.candidates_for(query)
        assert truth <= candidates
        assert source in candidates

    def test_query_features_are_contained(self, rng):
        db = self.make_db(rng)
        index = GIndex(db, gindex2_config())
        query = db[0]
        for feature_index in index.query_features(query):
            feature = index.features[feature_index]
            assert SubgraphMatcher(query).is_subgraph(feature.graph)

    def test_empty_query_matches_everything(self, rng):
        db = self.make_db(rng)
        index = GIndex(db, gindex2_config())
        assert index.candidates_for(LabeledGraph()) == set(db)


class TestStreamGIndex:
    def test_refresh_and_candidates(self, rng):
        queries = {"q": chain(["A", "B", "C"])}
        flt = GIndexStreamFilter(queries, gindex2_config())
        graphs = {0: chain(["A", "B", "C", "A"]), 1: chain(["C", "C"])}
        flt.refresh(graphs)
        assert flt.is_candidate(0, "q")
        assert not flt.is_candidate(1, "q")
        assert flt.candidates() == {(0, "q")}

    def test_refresh_replaces_state(self, rng):
        queries = {"q": chain(["A", "B"])}
        flt = GIndexStreamFilter(queries, gindex2_config())
        flt.refresh({0: chain(["A", "B"]), 1: chain(["C", "D"])})
        assert flt.candidates() == {(0, "q")}
        flt.refresh({0: chain(["C", "D"]), 1: chain(["A", "B"])})
        assert flt.candidates() == {(1, "q")}

    def test_no_contained_feature_means_no_pruning(self, rng):
        """gIndex can only prune with features the query contains; when
        none of the mined features is a subgraph of the query, every
        graph stays a candidate (sound, weak)."""
        flt = GIndexStreamFilter({"q": chain(["A", "B"])}, gindex2_config())
        flt.refresh({0: chain(["C", "D"])})
        assert flt.candidates() == {(0, "q")}

    @pytest.mark.parametrize("trial", range(3))
    def test_stream_soundness(self, trial):
        rng = random.Random(8800 + trial)
        graphs = {
            i: random_labeled_graph(rng, rng.randint(4, 7), extra_edges=2) for i in range(5)
        }
        queries = {
            f"q{i}": extract_connected_subgraph(rng, graphs[i % len(graphs)], 3)
            for i in range(3)
        }
        flt = GIndexStreamFilter(queries, gindex2_config())
        flt.refresh(graphs)
        for query_id, query in queries.items():
            truth = {
                graph_id
                for graph_id, graph in graphs.items()
                if SubgraphMatcher(graph).is_subgraph(query)
            }
            reported = {gid for gid, qid in flt.candidates() if qid == query_id}
            assert truth <= reported
