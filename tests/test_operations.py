"""Unit tests for graph change operations (Definitions 2.4-2.5)."""

import pytest
from hypothesis import given, settings

from repro.graph import (
    DELETE,
    INSERT,
    EdgeChange,
    GraphChangeOperation,
    GraphError,
    LabeledGraph,
    apply_change,
    apply_operation,
    diff_graphs,
)

from .conftest import graph_strategy


def base_graph() -> LabeledGraph:
    return LabeledGraph.from_vertices_and_edges(
        [(1, "A"), (2, "B"), (3, "C")],
        [(1, 2, "x"), (2, 3, "y")],
    )


class TestEdgeChange:
    def test_insert_factory(self):
        change = EdgeChange.insert(1, 2, "x", "A", "B")
        assert change.op == INSERT
        assert (change.u, change.v) == (1, 2)
        assert (change.u_label, change.v_label) == ("A", "B")

    def test_delete_factory(self):
        change = EdgeChange.delete(1, 2)
        assert change.op == DELETE

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            EdgeChange("upsert", 1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            EdgeChange.insert(1, 1)

    def test_frozen(self):
        change = EdgeChange.delete(1, 2)
        with pytest.raises(AttributeError):
            change.u = 9


class TestGraphChangeOperation:
    def test_iteration_and_len(self):
        operation = GraphChangeOperation([EdgeChange.delete(1, 2), EdgeChange.insert(3, 4, "x")])
        assert len(operation) == 2
        assert [c.op for c in operation] == [DELETE, INSERT]
        assert bool(operation)
        assert not GraphChangeOperation()

    def test_sequentialized_deletions_first(self):
        operation = GraphChangeOperation(
            [EdgeChange.insert(3, 4, "x"), EdgeChange.delete(1, 2), EdgeChange.insert(5, 6, "x")]
        )
        ops = [c.op for c in operation.sequentialized()]
        assert ops == [DELETE, INSERT, INSERT]
        assert len(operation.deletions) == 1
        assert len(operation.insertions) == 2


class TestApply:
    def test_insert_existing_vertices(self):
        graph = base_graph()
        apply_change(graph, EdgeChange.insert(1, 3, "z"))
        assert graph.edge_label(1, 3) == "z"

    def test_insert_creates_vertex_with_label(self):
        graph = base_graph()
        apply_change(graph, EdgeChange.insert(1, 9, "z", v_label="D"))
        assert graph.vertex_label(9) == "D"

    def test_insert_new_vertex_without_label_fails(self):
        graph = base_graph()
        with pytest.raises(GraphError):
            apply_change(graph, EdgeChange.insert(1, 9, "z"))

    def test_delete_drops_isolated_vertices(self):
        graph = base_graph()
        apply_change(graph, EdgeChange.delete(2, 3))
        assert not graph.has_vertex(3)  # 3 became isolated
        assert graph.has_vertex(2)  # 2 still has the (1,2) edge

    def test_apply_operation_batch(self):
        graph = base_graph()
        apply_operation(
            graph,
            GraphChangeOperation(
                [
                    # Deletion runs first and isolates vertex 1 (dropping
                    # it), so the insertion must re-supply its label.
                    EdgeChange.insert(1, 3, "z", u_label="A"),
                    EdgeChange.delete(1, 2),
                ]
            ),
        )
        assert graph.has_edge(1, 3)
        assert graph.vertex_label(1) == "A"
        assert not graph.has_edge(1, 2)
        assert graph.has_vertex(2)  # still holds the (2,3) edge

    def test_delete_missing_edge_raises(self):
        with pytest.raises(GraphError):
            apply_change(base_graph(), EdgeChange.delete(1, 3))


class TestDiffGraphs:
    def test_identical_graphs_empty_diff(self):
        assert len(diff_graphs(base_graph(), base_graph())) == 0

    def test_diff_reconstructs_target(self):
        old = base_graph()
        new = base_graph()
        new.remove_edge(1, 2)
        new.add_edge(1, 3, "z")  # keep vertex 1 non-isolated
        new.add_vertex(4, "D")
        new.add_edge(3, 4, "w")
        delta = diff_graphs(old, new)
        apply_operation(old, delta)
        assert old == new

    def test_label_change_is_delete_plus_insert(self):
        old = base_graph()
        new = base_graph()
        new.remove_edge(1, 2)
        new.add_edge(1, 2, "CHANGED")
        delta = diff_graphs(old, new)
        assert len(delta.deletions) == 1
        assert len(delta.insertions) == 1


@settings(max_examples=40, deadline=None)
@given(graph_strategy(), graph_strategy(min_vertices=2))
def test_diff_then_apply_reaches_target(old, new):
    # Share vertex labels where ids overlap (diff requires consistency).
    aligned = new.copy()
    for vertex in list(aligned.vertices()):
        if old.has_vertex(vertex) and old.vertex_label(vertex) != aligned.vertex_label(vertex):
            label = old.vertex_label(vertex)
            rebuilt = aligned.relabeled({})
            # rebuild with the shared label
            replacement = LabeledGraph()
            for v, lab in rebuilt.vertex_items():
                replacement.add_vertex(v, label if v == vertex else lab)
            for a, b, lab in rebuilt.edges():
                replacement.add_edge(a, b, lab)
            aligned = replacement
    working = old.copy()
    apply_operation(working, diff_graphs(old, aligned))
    # Compare edge sets and labels of shared structure; isolated vertices
    # are dropped by deletion semantics, so compare edges only.
    assert {frozenset((u, v)): l for u, v, l in working.edges()} == {
        frozenset((u, v)): l for u, v, l in aligned.edges()
    }
