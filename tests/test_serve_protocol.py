"""The serving wire protocol: text/JSON parsing, malformed input as
:class:`ProtocolError` (never a raw ``IndexError``), the DLQ change
format round-trip, and the typed event/reply serializers that replaced
the old ``json.dumps(..., default=str)`` catch-all."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.monitor import MatchEvent
from repro.graph.operations import DELETE, INSERT, EdgeChange
from repro.serve.protocol import (
    AddStream,
    BatchEdit,
    Checkpoint,
    Commit,
    Edit,
    Matches,
    Poll,
    ProtocolError,
    Quit,
    Stats,
    change_from_dict,
    change_to_dict,
    encode_reply,
    event_to_dict,
    parse_json_line,
    parse_text_line,
    to_jsonable,
)


class TestParseTextLine:
    def test_blank_and_comment_lines_are_skipped(self):
        assert parse_text_line("") is None
        assert parse_text_line("   \t ") is None
        assert parse_text_line("# a comment") is None

    def test_stream_with_and_without_graph_file(self):
        cmd = parse_text_line("stream s1")
        assert cmd == AddStream("s1", None, None, verb="stream")
        cmd = parse_text_line("stream s1 graphs.txt g0")
        assert cmd == AddStream("s1", "graphs.txt", "g0", verb="stream")

    def test_ins_with_full_and_partial_labels(self):
        cmd = parse_text_line("ins s1 1 2 x A B")
        assert isinstance(cmd, Edit)
        assert cmd.stream_id == "s1"
        assert cmd.change == EdgeChange.insert("1", "2", "x", "A", "B")
        bare = parse_text_line("ins s1 1 2")
        assert bare.change.edge_label == "-"
        assert bare.change.u_label is None

    def test_del_parses(self):
        cmd = parse_text_line("del s1 1 2")
        assert isinstance(cmd, Edit)
        assert cmd.change.op == DELETE

    def test_verbs_and_aliases(self):
        assert isinstance(parse_text_line("tick"), Commit)
        assert isinstance(parse_text_line("commit"), Commit)
        assert isinstance(parse_text_line("poll"), Poll)
        assert isinstance(parse_text_line("events"), Poll)
        assert isinstance(parse_text_line("matches"), Matches)
        assert isinstance(parse_text_line("stats"), Stats)
        assert isinstance(parse_text_line("checkpoint"), Checkpoint)
        assert isinstance(parse_text_line("quit"), Quit)

    def test_verb_is_echoed_as_spelled(self):
        assert parse_text_line("tick").verb == "tick"
        assert parse_text_line("commit").verb == "commit"

    @pytest.mark.parametrize(
        "line",
        [
            "frobnicate",
            "stream",
            "stream a b c d",
            "ins s1",
            "ins s1 u",  # the historical IndexError case
            "ins s1 1 2 x A B extra",
            "del s1 1",
            "del s1 1 2 extra",
            "tick now",
            "matches please",
        ],
    )
    def test_malformed_lines_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            parse_text_line(line)

    def test_malformed_never_escapes_as_index_error(self):
        try:
            parse_text_line("ins s1 u")
        except ProtocolError as exc:
            assert "ins" in str(exc)
        else:  # pragma: no cover - the parse must raise
            pytest.fail("expected ProtocolError")

    def test_self_loop_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_text_line("ins s1 3 3")


class TestParseJsonLine:
    def test_blank_line_is_skipped(self):
        assert parse_json_line("") is None
        assert parse_json_line("  \n") is None

    def test_ins_preserves_integer_ids(self):
        cmd = parse_json_line(
            json.dumps(
                {
                    "cmd": "ins",
                    "stream": 7,
                    "u": 1,
                    "v": 2,
                    "edge_label": "x",
                    "u_label": "A",
                    "v_label": "B",
                }
            )
        )
        assert isinstance(cmd, Edit)
        assert cmd.stream_id == 7
        assert cmd.change.u == 1 and cmd.change.v == 2

    def test_batch_parses_many_changes(self):
        cmd = parse_json_line(
            json.dumps(
                {
                    "cmd": "batch",
                    "stream": "s",
                    "changes": [
                        {"op": "ins", "u": 1, "v": 2, "edge_label": "x"},
                        {"op": "del", "u": 3, "v": 4},
                    ],
                }
            )
        )
        assert isinstance(cmd, BatchEdit)
        assert len(cmd.changes) == 2
        assert cmd.changes[0].op == INSERT
        assert cmd.changes[1].op == DELETE

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"no_cmd": true}',
            '{"cmd": 7}',
            '{"cmd": "warp"}',
            '{"cmd": "ins"}',  # missing stream
            '{"cmd": "ins", "stream": "s"}',  # missing u/v
            '{"cmd": "batch", "stream": "s"}',  # missing changes
            '{"cmd": "batch", "stream": "s", "changes": "nope"}',
            '{"cmd": "ins", "stream": "s", "u": 1, "v": 1}',  # self loop
        ],
    )
    def test_malformed_json_commands_raise(self, line):
        with pytest.raises(ProtocolError):
            parse_json_line(line)


class TestChangeDictRoundTrip:
    def test_insert_round_trips(self):
        change = EdgeChange.insert(1, 2, "x", "A", "B")
        assert change_from_dict(change_to_dict(change)) == change

    def test_delete_round_trips(self):
        change = EdgeChange.delete("a", "b")
        assert change_from_dict(change_to_dict(change)) == change

    def test_delete_dict_omits_labels(self):
        doc = change_to_dict(EdgeChange.delete(1, 2))
        assert set(doc) == {"op", "u", "v"}

    @pytest.mark.parametrize(
        "doc",
        [
            "not a mapping",
            {"op": "upsert", "u": 1, "v": 2},
            {"op": "ins", "u": 1},
            {"op": "ins", "u": 1, "v": 1},
        ],
    )
    def test_bad_change_dicts_raise(self, doc):
        with pytest.raises(ProtocolError):
            change_from_dict(doc)


class TestTypedSerialization:
    """Regression for the ``emit(..., default=str)`` catch-all: events
    and replies must keep int ids and timestamps typed."""

    def test_event_keeps_integer_ids_typed(self):
        event = MatchEvent(kind="appeared", stream_id=7, query_id="q0")
        doc = event_to_dict(event, 42)
        assert doc == {"kind": "appeared", "stream": 7, "query": "q0", "t": 42}
        decoded = json.loads(json.dumps(doc))
        assert decoded["stream"] == 7 and not isinstance(decoded["stream"], str)
        assert decoded["t"] == 42 and not isinstance(decoded["t"], str)

    def test_exotic_ids_fall_back_to_str_explicitly(self):
        event = MatchEvent(kind="vanished", stream_id=("s", 1), query_id="q")
        doc = event_to_dict(event, 1)
        assert doc["stream"] == str(("s", 1))

    def test_to_jsonable_passes_native_scalars_through(self):
        value = {"t": 3, "ratio": 0.5, "ok": True, "name": "x", "none": None}
        assert to_jsonable(value) == value

    def test_to_jsonable_stringifies_only_exotic_leaves(self):
        doc = to_jsonable({"path": Path("/tmp/x"), "ids": [1, 2], "keys": {3: "v"}})
        assert doc == {"path": "/tmp/x", "ids": [1, 2], "keys": {"3": "v"}}

    def test_to_jsonable_sorts_sets_deterministically(self):
        assert to_jsonable({"s": {3, 1, 2}}) == {"s": [1, 2, 3]}

    def test_encode_reply_round_trips_typed(self):
        reply = {"ok": True, "t": 9, "events": [{"stream": 4, "t": 9}]}
        decoded = json.loads(encode_reply(reply))
        assert decoded["t"] == 9
        assert decoded["events"][0]["stream"] == 4
