"""The shared-memory NPV plane: plane-backed row stores must equal the
in-process numpy rows bit-for-bit (grow/remove/remap included), rings
must round-trip payloads exactly, and ``ShardedMonitor(shm=True)`` must
stay a behavioural drop-in that leaks no segments past ``close()``."""

from __future__ import annotations

import itertools
import os
import random
import signal
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.datasets.stream_gen import synthesize_stream
from repro.graph import EdgeChange
from repro.join.matrix import DenseRowStore
from repro.runtime import ShardedMonitor
from repro.runtime.shm import (
    TOMBSTONE_GENERATION,
    NpvPlane,
    PlaneReader,
    RingReader,
    ShmError,
    ShmRing,
    StaleSegment,
    cleanup_segments,
    live_segments,
    make_prefix,
)

from .conftest import random_labeled_graph

#: Leak assertions scan /dev/shm directly; skip them where it is absent.
HAS_SHM_DIR = Path("/dev/shm").is_dir()
needs_shm_dir = pytest.mark.skipif(not HAS_SHM_DIR, reason="no /dev/shm to scan")

_uniq = itertools.count()


def fresh_prefix() -> str:
    """A namespace no other test (or test run) is using."""
    return make_prefix("t", next(_uniq), os.getpid() % 997)


@pytest.fixture
def plane():
    instance = NpvPlane(fresh_prefix())
    yield instance
    instance.close()


# ----------------------------------------------------------------------
# row stores: shared-memory vs in-process, bit for bit
# ----------------------------------------------------------------------
DIMS = 3

store_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=DIMS - 1),
            st.integers(min_value=-(2**40), max_value=2**40),
        ),
        st.just(("grow",)),
        st.tuples(st.just("rows"), st.integers(min_value=0, max_value=64)),
    ),
    max_size=30,
)


class TestRowStoreEquivalence:
    @given(ops=store_ops)
    @settings(max_examples=30, deadline=None)
    def test_round_trips_equal_dense_rows_bit_for_bit(self, ops):
        prefix = fresh_prefix()
        plane = NpvPlane(prefix)
        reader = PlaneReader()
        try:
            dense = DenseRowStore(4, DIMS)
            shared = plane.row_store(4, DIMS)
            rows = 0
            for op in ops:
                if op[0] == "write":
                    _, row, col, value = op
                    if row >= dense.array.shape[0]:
                        continue
                    dense.array[row, col] = value
                    shared.array[row, col] = value
                elif op[0] == "grow":
                    dense.grow()
                    shared.grow()
                else:
                    rows = min(op[1], dense.array.shape[0])
                    dense.set_row_count(rows)
                    shared.set_row_count(rows)
                assert shared.array.shape == dense.array.shape
                assert np.array_equal(shared.array, dense.array)
                # The remap handshake's read path sees the same bytes.
                via_reader = reader.read(shared.descriptor())
                assert np.array_equal(via_reader, dense.array[:rows])
        finally:
            reader.close()
            plane.close()
        if HAS_SHM_DIR:
            assert live_segments(prefix) == []

    def test_grow_preserves_rows_and_stales_old_descriptor(self, plane):
        store = plane.row_store(4, 2)
        store.array[:4] = np.arange(8).reshape(4, 2)
        store.set_row_count(4)
        reader = PlaneReader()
        stale = store.descriptor()
        assert np.array_equal(reader.read(stale), np.arange(8).reshape(4, 2))
        store.grow()
        assert store.array.shape == (8, 2)
        assert np.array_equal(store.array[:4], np.arange(8).reshape(4, 2))
        with pytest.raises(StaleSegment):
            reader.read(stale)  # old segment was tombstoned by the grow
        fresh = store.descriptor()
        assert fresh.generation > stale.generation
        assert np.array_equal(reader.read(fresh), np.arange(8).reshape(4, 2))
        reader.close()

    def test_release_tombstones_and_free_list_reuses(self, plane):
        first = plane.row_store(4, 2)
        issued = first.descriptor()
        first.release()
        assert plane.stats()["free_segments"] == 1
        reader = PlaneReader()
        with pytest.raises(StaleSegment):
            reader.read(issued)  # freed: header holds the tombstone
        second = plane.row_store(4, 2)
        reused = second.descriptor()
        assert reused.name == issued.name  # same segment, recycled
        assert reused.generation > issued.generation
        assert issued.generation > TOMBSTONE_GENERATION
        assert plane.stats()["free_segments"] == 0
        assert np.count_nonzero(second.array) == 0  # fresh slate
        reader.close()

    def test_reader_raises_on_vanished_segment(self, plane):
        store = plane.row_store(4, 2)
        descriptor = store.descriptor()
        plane.close()  # unlinks everything
        reader = PlaneReader()
        with pytest.raises(StaleSegment):
            reader.read(descriptor)
        reader.close()


# ----------------------------------------------------------------------
# plane lifecycle: sweep and leak-freedom
# ----------------------------------------------------------------------
@needs_shm_dir
class TestPlaneLifecycle:
    def test_close_unlinks_every_segment(self):
        prefix = fresh_prefix()
        plane = NpvPlane(prefix)
        plane.row_store(4, 2)
        grown = plane.row_store(4, 2)
        grown.grow()  # two live segments + one free-listed
        assert live_segments(prefix)
        plane.close()
        assert live_segments(prefix) == []
        assert plane.stats() == {
            "segments": 0,
            "bytes": 0,
            "free_segments": 0,
            "generation": plane.stats()["generation"],
        }

    def test_cleanup_segments_sweeps_orphans(self):
        prefix = fresh_prefix()
        plane = NpvPlane(prefix)
        plane.row_store(4, 2)
        plane.row_store(8, 2)
        # A SIGKILLed owner never unlinks; simulate by only closing the
        # local mappings.
        plane.close(unlink=False)
        assert len(live_segments(prefix)) == 2
        removed = cleanup_segments(prefix)
        assert len(removed) == 2
        assert live_segments(prefix) == []
        assert cleanup_segments(prefix) == []  # idempotent


# ----------------------------------------------------------------------
# payload rings
# ----------------------------------------------------------------------
class TestRing:
    def make_ring(self, capacity: int) -> tuple[ShmRing, RingReader]:
        ring = ShmRing(f"{fresh_prefix()}-ring", capacity)
        return ring, RingReader(ring.name)

    def test_fifo_round_trip(self):
        ring, reader = self.make_ring(256)
        try:
            payloads = [bytes([i]) * (10 + i) for i in range(5)]
            refs = [ring.push(p) for p in payloads]
            assert all(refs)
            for ref, payload in zip(refs, payloads):
                assert reader.read(ref) == payload
            assert ring.free_bytes() == 256  # watermark fully advanced
        finally:
            reader.close()
            ring.close()

    def test_wraparound_preserves_bytes(self):
        ring, reader = self.make_ring(64)
        try:
            first = ring.push(b"a" * 40)
            assert reader.read(first) == b"a" * 40
            wrapped = ring.push(bytes(range(50)))  # crosses the seam
            assert wrapped is not None
            assert wrapped.offset == 40
            assert reader.read(wrapped) == bytes(range(50))
        finally:
            reader.close()
            ring.close()

    def test_full_ring_rejects_then_recovers(self):
        ring, reader = self.make_ring(32)
        try:
            parked = ring.push(b"x" * 30)
            assert ring.push(b"y" * 8) is None  # would overrun the tail
            assert reader.read(parked) == b"x" * 30
            assert ring.push(b"y" * 8) is not None  # space reclaimed
        finally:
            reader.close()
            ring.close()

    def test_rollback_unpushes_only_the_latest(self):
        ring, reader = self.make_ring(64)
        try:
            first = ring.push(b"keep")
            second = ring.push(b"drop")
            with pytest.raises(ShmError):
                ring.rollback(first)
            ring.rollback(second)
            assert ring.free_bytes() == 64 - len(b"keep")
            assert reader.read(first) == b"keep"
        finally:
            reader.close()
            ring.close()

    def test_corruption_fails_the_crc_loudly(self):
        ring, reader = self.make_ring(64)
        try:
            ref = ring.push(b"payload")
            ring._segment.buf[64] ^= 0xFF  # first payload byte, behind the header
            with pytest.raises(ShmError, match="CRC"):
                reader.read(ref)
        finally:
            reader.close()
            ring.close()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ShmRing(f"{fresh_prefix()}-bad", 0)


# ----------------------------------------------------------------------
# the sharded runtime on the plane
# ----------------------------------------------------------------------
def small_queries(rng: random.Random, count: int = 3) -> dict:
    return {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(count)
    }


def small_streams(rng: random.Random, count: int = 3, timestamps: int = 5) -> dict:
    streams = {}
    for i in range(count):
        base = random_labeled_graph(rng, rng.randint(4, 7), extra_edges=2)
        streams[f"s{i}"] = synthesize_stream(
            base, 0.3, 0.2, timestamps, rng, all_pairs=True, name=f"s{i}"
        )
    return streams


class TestShardedShm:
    def drive(self, sharded: ShardedMonitor, streams: dict, npv: bool) -> None:
        """Replay against an oracle; optionally pin NPV rows bit-for-bit
        out of shared memory at every timestamp."""
        oracle = StreamMonitor(
            sharded.spec.queries,
            method=sharded.spec.method,
            depth_limit=sharded.spec.depth_limit,
        )
        for stream_id, stream in streams.items():
            sharded.add_stream(stream_id, stream.initial)
            oracle.add_stream(stream_id, stream.initial)
        horizon = min(len(stream.operations) for stream in streams.values())
        for t in range(horizon):
            for stream_id, stream in streams.items():
                sharded.apply(stream_id, stream.operations[t])
                oracle.apply(stream_id, stream.operations[t])
            assert sharded.matches() == oracle.matches(), f"diverged at t={t + 1}"
            if npv:
                for stream_id in streams:
                    assert np.array_equal(
                        sharded.npv_rows(stream_id),
                        oracle.engine.npv_rows(stream_id),
                    ), f"NPV rows diverged for {stream_id} at t={t + 1}"

    def test_matches_and_npv_rows_equal_oracle(self):
        rng = random.Random(71)
        queries = small_queries(rng)
        streams = small_streams(rng, count=3, timestamps=5)
        with ShardedMonitor(
            queries, method="matrix", num_workers=2, shm=True
        ) as sharded:
            self.drive(sharded, streams, npv=True)
            stats = sharded.stats()
        assert stats["shm"]["segments"] >= len(streams)
        assert stats["shm"]["bytes"] > 0
        assert stats["shm"]["rings"] == 2

    def test_remap_handshake_on_growth(self):
        """Growing a stream past the initial row capacity swaps its
        segment; the coordinator's cached descriptor goes stale and the
        re-request is counted as a remap."""
        rng = random.Random(72)
        queries = small_queries(rng, count=2)
        previous = obs.set_registry(obs.Registry())
        was_enabled = obs.enabled()
        obs.enable()
        try:
            with ShardedMonitor(
                queries, method="matrix", num_workers=1, shm=True
            ) as sharded:
                oracle = StreamMonitor(queries, method="matrix")
                sharded.add_stream("s0")
                oracle.add_stream("s0")
                for i in range(40):  # well past _INITIAL_ROWS = 16
                    change = EdgeChange.insert(i, i + 1000, "-", "A", "B")
                    sharded.apply("s0", change)
                    oracle.apply("s0", change)
                    assert np.array_equal(
                        sharded.npv_rows("s0"), oracle.engine.npv_rows("s0")
                    )
                summary = obs.get_registry().summary()
                assert summary["shm.remaps"]["value"] >= 1
                # The grow itself happens worker-side; it reaches the
                # coordinator through the merged registries.
                merged = sharded.stats()["merged_obs"]
                assert merged["shm.grows"]["value"] >= 1
        finally:
            obs.set_registry(previous)
            if not was_enabled:
                obs.disable()

    def test_tiny_ring_falls_back_inline_losslessly(self):
        rng = random.Random(73)
        queries = small_queries(rng)
        streams = small_streams(rng, count=2, timestamps=4)
        with ShardedMonitor(
            queries, method="matrix", num_workers=2, shm=True, ring_capacity=1
        ) as sharded:
            self.drive(sharded, streams, npv=True)

    def test_non_matrix_engine_still_ships_ring_payloads(self):
        rng = random.Random(74)
        queries = small_queries(rng)
        streams = small_streams(rng, count=2, timestamps=4)
        with ShardedMonitor(queries, method="dsc", num_workers=2, shm=True) as sharded:
            self.drive(sharded, streams, npv=False)
            with pytest.raises(RuntimeError, match="no exportable NPV rows"):
                sharded.npv_rows(next(iter(streams)))

    def test_npv_rows_requires_shm_and_known_stream(self):
        rng = random.Random(75)
        queries = small_queries(rng)
        with ShardedMonitor(queries, method="matrix", num_workers=1) as sharded:
            sharded.add_stream("s0")
            with pytest.raises(RuntimeError, match="shm=True"):
                sharded.npv_rows("s0")
        with ShardedMonitor(
            queries, method="matrix", num_workers=1, shm=True
        ) as sharded:
            with pytest.raises(KeyError):
                sharded.npv_rows("ghost")

    @needs_shm_dir
    def test_close_leaves_no_segments(self):
        rng = random.Random(76)
        queries = small_queries(rng)
        streams = small_streams(rng, count=3, timestamps=3)
        sharded = ShardedMonitor(queries, method="matrix", num_workers=2, shm=True)
        prefix = sharded._shm_base
        try:
            self.drive(sharded, streams, npv=True)
            assert live_segments(prefix)  # the plane is actually in use
        finally:
            sharded.close()
        assert live_segments(prefix) == []

    @needs_shm_dir
    def test_sigkill_orphans_are_swept_on_recovery_and_close(self):
        rng = random.Random(77)
        queries = small_queries(rng)
        streams = small_streams(rng, count=3, timestamps=5)
        oracle = StreamMonitor(queries, method="matrix")
        sharded = ShardedMonitor(queries, method="matrix", num_workers=2, shm=True)
        prefix = sharded._shm_base
        try:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
                oracle.add_stream(stream_id, stream.initial)
            horizon = min(len(s.operations) for s in streams.values())
            for t in range(horizon):
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                    oracle.apply(stream_id, stream.operations[t])
                if t == horizon // 2:
                    os.kill(sharded.worker_pids()[0], signal.SIGKILL)
                    time.sleep(0.05)
                assert sharded.matches() == oracle.matches()
                for stream_id in streams:
                    assert np.array_equal(
                        sharded.npv_rows(stream_id),
                        oracle.engine.npv_rows(stream_id),
                    )
            assert sharded.recovery_log.recoveries >= 1
        finally:
            sharded.close()
        assert live_segments(prefix) == []
