"""Tests for NPV projection (Definitions 4.1-4.2) and its soundness."""

import random

import pytest
from hypothesis import given, settings

from repro.graph import LabeledGraph
from repro.isomorphism import find_subgraph_isomorphism
from repro.nnt import (
    build_nnt,
    dominates,
    project_graph,
    project_tree,
    strictly_dominates,
    vector_mass,
)
from repro.nnt.projection import (
    DimensionScheme,
    PAPER_SCHEME,
    add_to_vector,
)

from .conftest import extract_connected_subgraph, graph_strategy, random_labeled_graph


def figure7_query() -> LabeledGraph:
    """Figure 7's flavor: A-labeled hub with B/C neighbors."""
    return LabeledGraph.from_vertices_and_edges(
        [(1, "A"), (2, "C"), (3, "B"), (4, "B")],
        [(1, 2, "-"), (1, 3, "-"), (1, 4, "-"), (2, 3, "-")],
    )


class TestDimensionScheme:
    def test_paper_scheme_excludes_edge_label(self):
        dim = PAPER_SCHEME.dimension(2, "A", "B", "bond")
        assert dim == (2, "A", "B")

    def test_extended_scheme_includes_edge_label(self):
        scheme = DimensionScheme(include_edge_label=True)
        assert scheme.dimension(2, "A", "B", "bond") == (2, "A", "B", "bond")

    def test_root_has_no_dimension(self):
        graph = figure7_query()
        tree = build_nnt(graph, 1, 1)
        with pytest.raises(ValueError):
            PAPER_SCHEME.dimension_of_node(tree.root, graph.vertex_label)


class TestProjectTree:
    def test_depth1_counts_neighbor_labels(self):
        graph = figure7_query()
        tree = build_nnt(graph, 1, 1)
        npv = project_tree(tree, graph.vertex_label)
        assert npv == {(1, "A", "B"): 2, (1, "A", "C"): 1}

    def test_counts_sum_to_tree_edges(self):
        graph = figure7_query()
        for vertex in graph.vertices():
            tree = build_nnt(graph, vertex, 3)
            npv = project_tree(tree, graph.vertex_label)
            assert vector_mass(npv) == tree.num_tree_edges()

    def test_no_zero_entries_stored(self):
        graph = figure7_query()
        npv = project_tree(build_nnt(graph, 1, 2), graph.vertex_label)
        assert all(value > 0 for value in npv.values())

    def test_project_graph_covers_all_vertices(self):
        graph = figure7_query()
        npvs = project_graph(graph, 2)
        assert set(npvs) == set(graph.vertices())


class TestAddToVector:
    def test_add_and_remove(self):
        vector = {}
        add_to_vector(vector, "d", 2)
        assert vector == {"d": 2}
        add_to_vector(vector, "d", -2)
        assert vector == {}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            add_to_vector({}, "d", -1)


class TestDominance:
    def test_reflexive(self):
        vector = {(1, "A", "B"): 2}
        assert dominates(vector, vector)
        assert not strictly_dominates(vector, vector)

    def test_simple_cases(self):
        big = {"a": 3, "b": 1}
        small = {"a": 2}
        assert dominates(big, small)
        assert not dominates(small, big)
        assert strictly_dominates(big, small)

    def test_missing_dimension_fails(self):
        assert not dominates({"a": 5}, {"b": 1})

    def test_empty_vector_dominated_by_anything(self):
        assert dominates({}, {})
        assert dominates({"a": 1}, {})

    def test_size_shortcut(self):
        # big has fewer non-zero dims than small -> cannot dominate
        assert not dominates({"a": 9}, {"a": 1, "b": 1})


class TestSoundness:
    """Lemma 4.2: a subgraph embedding forces NPV dominance."""

    @pytest.mark.parametrize("trial", range(10))
    @pytest.mark.parametrize("depth", (1, 2, 3))
    def test_embedding_implies_dominance(self, trial, depth):
        rng = random.Random(7000 + trial)
        target = random_labeled_graph(rng, rng.randint(5, 9), extra_edges=rng.randint(0, 4))
        query = extract_connected_subgraph(rng, target, rng.randint(2, 4))
        mapping = find_subgraph_isomorphism(query, target)
        assert mapping is not None
        query_npvs = project_graph(query, depth)
        target_npvs = project_graph(target, depth)
        for query_vertex, target_vertex in mapping.items():
            assert dominates(target_npvs[target_vertex], query_npvs[query_vertex]), (
                query_vertex,
                target_vertex,
            )


@settings(max_examples=30, deadline=None)
@given(graph_strategy(min_vertices=2, max_vertices=7))
def test_property_self_projection_dominates_itself(graph):
    npvs = project_graph(graph, 3)
    for vector in npvs.values():
        assert dominates(vector, vector)


@settings(max_examples=25, deadline=None)
@given(graph_strategy(min_vertices=3, max_vertices=7))
def test_property_removing_an_edge_weakens_vectors(graph):
    """Removing an edge can only shrink every NPV (monotonicity)."""
    edges = list(graph.edges())
    if not edges:
        return
    before = project_graph(graph, 3)
    u, v, _ = edges[0]
    smaller = graph.copy()
    smaller.remove_edge(u, v)
    after = project_graph(smaller, 3)
    for vertex, vector in after.items():
        assert dominates(before[vertex], vector)
