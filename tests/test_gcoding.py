"""Tests for the GCoding-style spectral baseline: soundness (eigenvalue
monotonicity under embeddings) and the filter interfaces."""

import math
import random

import pytest
from hypothesis import given, settings

from repro.baselines.gcoding import (
    ALL,
    GCodingFilter,
    GCodingStreamFilter,
    ball,
    graph_signatures,
    signature_dominates,
    spectral_signature,
)
from repro.graph import LabeledGraph
from repro.isomorphism import find_subgraph_isomorphism, is_subgraph_isomorphic

from .conftest import extract_connected_subgraph, graph_strategy, random_labeled_graph


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, "-")
    return graph


class TestBall:
    def test_radius_zero(self):
        graph = chain(["A", "B", "C"])
        assert ball(graph, 1, 0) == {1}

    def test_radius_growth(self):
        graph = chain(["A", "B", "C", "D"])
        assert ball(graph, 0, 1) == {0, 1}
        assert ball(graph, 0, 2) == {0, 1, 2}
        assert ball(graph, 0, 99) == {0, 1, 2, 3}


class TestSpectralSignature:
    def test_single_vertex_empty(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        assert spectral_signature(graph, 0) == {}

    def test_single_edge_eigenvalue(self):
        graph = chain(["A", "B"])
        signature = spectral_signature(graph, 0, radius=1)
        # adjacency of one edge has eigenvalues +-1
        assert signature[ALL] == pytest.approx(1.0)
        assert signature[("A", "B")] == pytest.approx(1.0)

    def test_star_eigenvalue(self):
        star = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B"), (2, "B"), (3, "B")],
            [(0, 1, "-"), (0, 2, "-"), (0, 3, "-")],
        )
        signature = spectral_signature(star, 0, radius=1)
        # K_{1,3} has lambda_max = sqrt(3)
        assert signature[ALL] == pytest.approx(math.sqrt(3))
        # restricted to labels {B,B}: no edges among leaves
        assert ("B", "B") not in signature

    def test_keys_are_sorted_label_pairs(self):
        graph = chain(["B", "A"])
        signature = spectral_signature(graph, 0, radius=1)
        assert set(signature) == {ALL, ("A", "B")}


class TestDominance:
    def test_tolerant_comparison(self):
        assert signature_dominates({ALL: 1.0}, {ALL: 1.0 + 1e-12})
        assert not signature_dominates({ALL: 1.0}, {ALL: 1.1})

    def test_missing_key(self):
        assert not signature_dominates({}, {ALL: 0.5})
        assert signature_dominates({ALL: 0.5}, {})


class TestSoundness:
    @pytest.mark.parametrize("trial", range(8))
    def test_embedding_implies_signature_dominance(self, trial):
        rng = random.Random(4400 + trial)
        target = random_labeled_graph(rng, rng.randint(5, 8), extra_edges=rng.randint(0, 4))
        query = extract_connected_subgraph(rng, target, rng.randint(2, 4))
        mapping = find_subgraph_isomorphism(query, target)
        assert mapping is not None
        query_signatures = graph_signatures(query, radius=2)
        target_signatures = graph_signatures(target, radius=2)
        for query_vertex, target_vertex in mapping.items():
            assert signature_dominates(
                target_signatures[target_vertex], query_signatures[query_vertex]
            )

    @pytest.mark.parametrize("trial", range(6))
    def test_filter_no_false_negatives(self, trial):
        rng = random.Random(4500 + trial)
        target = random_labeled_graph(rng, rng.randint(5, 8), extra_edges=3)
        query = extract_connected_subgraph(rng, target, 3)
        assert GCodingFilter(query, radius=2).admits(target)

    def test_filter_rejects_label_mismatch(self):
        query = chain(["A", "A"])
        target = chain(["B", "B", "B"])
        assert not GCodingFilter(query).admits(target)


class TestStreamFilter:
    def test_update_and_candidates(self):
        flt = GCodingStreamFilter({"q": chain(["A", "B"])}, radius=1)
        flt.update_stream(0, chain(["A", "B", "C"]))
        flt.update_stream(1, chain(["C", "C"]))
        assert flt.candidates() == {(0, "q")}

    def test_remove_stream(self):
        flt = GCodingStreamFilter({"q": chain(["A", "B"])})
        flt.update_stream(0, chain(["A", "B"]))
        flt.remove_stream(0)
        assert flt.candidates() == set()


@settings(max_examples=15, deadline=None)
@given(graph_strategy(min_vertices=3, max_vertices=6), graph_strategy(min_vertices=2, max_vertices=4))
def test_property_spectral_filter_sound(target, query):
    if is_subgraph_isomorphic(query, target):
        assert GCodingFilter(query, radius=2).admits(target)


@settings(max_examples=15, deadline=None)
@given(graph_strategy(min_vertices=3, max_vertices=6))
def test_property_adding_edges_grows_lambda(graph):
    """lambda_max of every ALL-key signature grows when an edge is added."""
    vertices = list(graph.vertices())
    missing = [
        (u, v)
        for i, u in enumerate(vertices)
        for v in vertices[i + 1 :]
        if not graph.has_edge(u, v)
    ]
    if not missing:
        return
    before = {v: spectral_signature(graph, v, 2).get(ALL, 0.0) for v in vertices}
    bigger = graph.copy()
    bigger.add_edge(*missing[0], "-")
    after = {v: spectral_signature(bigger, v, 2).get(ALL, 0.0) for v in vertices}
    for vertex in vertices:
        assert after[vertex] >= before[vertex] - 1e-9
