"""Tests for the dominance/skyline utilities behind the join engines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.join import (
    dominated_count,
    is_bichromatic_skyline,
    maximal_vectors,
    pair_joinable_bruteforce,
)
from repro.nnt import dominates


class TestMaximalVectors:
    def test_single_vector(self):
        assert maximal_vectors([{"a": 1}]) == [0]

    def test_chain(self):
        vectors = [{"a": 1}, {"a": 2}, {"a": 3}]
        assert maximal_vectors(vectors) == [2]

    def test_incomparable_all_kept(self):
        vectors = [{"a": 2}, {"b": 2}]
        assert maximal_vectors(vectors) == [0, 1]

    def test_duplicates_keep_one(self):
        vectors = [{"a": 1}, {"a": 1}, {"a": 1}]
        assert maximal_vectors(vectors) == [0]

    def test_mixed(self):
        vectors = [{"a": 1, "b": 1}, {"a": 1}, {"b": 2}, {"a": 1, "b": 1}]
        kept = maximal_vectors(vectors)
        assert 0 in kept and 2 in kept
        assert 1 not in kept  # dominated by 0
        assert 3 not in kept  # duplicate of 0

    def test_empty_vector_dominated_by_all(self):
        vectors = [{}, {"a": 1}]
        assert maximal_vectors(vectors) == [1]


class TestDominatedCount:
    def test_counts_self_too(self):
        vectors = [{"a": 1}, {"a": 2}]
        assert dominated_count({"a": 2}, vectors) == 2
        assert dominated_count({"a": 1}, vectors) == 1


class TestBichromaticSkyline:
    def test_detected(self):
        assert is_bichromatic_skyline({"a": 5}, [{"a": 4}, {"b": 9}])

    def test_not_skyline(self):
        assert not is_bichromatic_skyline({"a": 5}, [{"a": 5, "b": 1}])


class TestBruteforceOracle:
    def test_empty_query_side_joinable(self):
        assert pair_joinable_bruteforce([], [{"a": 1}])
        assert pair_joinable_bruteforce([], [])

    def test_all_must_be_covered(self):
        queries = [{"a": 1}, {"b": 1}]
        assert pair_joinable_bruteforce(queries, [{"a": 1, "b": 1}])
        assert pair_joinable_bruteforce(queries, [{"a": 1}, {"b": 2}])
        assert not pair_joinable_bruteforce(queries, [{"a": 1}])


sparse_vectors = st.lists(
    st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), st.integers(1, 4), max_size=3),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(sparse_vectors)
def test_property_maximal_set_dominates_everything(vectors):
    kept = maximal_vectors(vectors)
    for index, vector in enumerate(vectors):
        assert any(dominates(vectors[k], vector) for k in kept), index


@settings(max_examples=60, deadline=None)
@given(sparse_vectors, sparse_vectors)
def test_property_maximal_probe_equivalence(query_vectors, stream_vectors):
    """Checking only maximal query vectors gives the same verdict as
    checking all of them (the skyline engine's core optimization)."""
    full = pair_joinable_bruteforce(query_vectors, stream_vectors)
    kept = maximal_vectors(query_vectors)
    reduced = all(
        any(dominates(sv, query_vectors[k]) for sv in stream_vectors) for k in kept
    )
    assert full == reduced
