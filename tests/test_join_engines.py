"""The three join engines must agree with each other and with the
brute-force oracle, under arbitrary update sequences."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import LabeledGraph
from repro.join import (
    ENGINES,
    QuerySet,
    StreamListenerAdapter,
    make_engine,
    pair_joinable_bruteforce,
)
from repro.nnt import NNTIndex

from .conftest import random_labeled_graph


def small_queries(rng: random.Random, count: int = 4) -> dict:
    return {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 5), extra_edges=rng.randint(0, 2))
        for i in range(count)
    }


def oracle(indexes: dict, query_set: QuerySet) -> set:
    out = set()
    for stream_id, index in indexes.items():
        stream_vectors = list(index.npvs.values())
        for query_id in query_set.query_ids():
            query_vectors = [
                query_set.vectors[i].vector for i in query_set.by_query[query_id]
            ]
            if pair_joinable_bruteforce(query_vectors, stream_vectors):
                out.add((stream_id, query_id))
    return out


class TestQuerySet:
    def test_vectors_flattened(self, rng):
        queries = small_queries(rng)
        query_set = QuerySet(queries, depth_limit=2)
        assert len(query_set) == len(queries)
        total_vertices = sum(g.num_vertices for g in queries.values())
        # Fingerprint dedup may collapse identical projections, never grow.
        assert len(query_set.vectors) <= total_vertices
        assert query_set.live_vector_count() <= total_vertices
        for query_id, indices in query_set.by_query.items():
            group_id = query_set.group_of[query_id]
            assert query_id in query_set.groups[group_id].members
            assert all(query_set.vectors[i].group == group_id for i in indices)
            assert query_set.groups[group_id].indices is indices

    def test_dimension_universe(self, rng):
        query_set = QuerySet(small_queries(rng), depth_limit=2)
        for record in query_set.vectors:
            assert set(record.vector) <= query_set.dimension_universe


class TestEngineFactory:
    def test_known_engines(self, rng):
        query_set = QuerySet(small_queries(rng), depth_limit=2)
        for name, cls in ENGINES.items():
            assert isinstance(make_engine(name, query_set), cls)

    def test_unknown_engine(self, rng):
        with pytest.raises(ValueError):
            make_engine("quantum", QuerySet(small_queries(rng), depth_limit=2))

    def test_duplicate_stream_rejected(self, rng):
        query_set = QuerySet(small_queries(rng), depth_limit=2)
        for name in ENGINES:
            engine = make_engine(name, query_set)
            engine.register_stream(0, {})
            with pytest.raises(ValueError):
                engine.register_stream(0, {})

    def test_remove_stream(self, rng):
        query_set = QuerySet(small_queries(rng), depth_limit=2)
        for name in ENGINES:
            engine = make_engine(name, query_set)
            engine.register_stream(0, {})
            engine.remove_stream(0)
            assert engine.stream_ids() == []


class TestStaticAgreement:
    @pytest.mark.parametrize("trial", range(6))
    def test_engines_agree_on_random_snapshots(self, trial):
        rng = random.Random(9000 + trial)
        query_set = QuerySet(small_queries(rng), depth_limit=2)
        indexes = {
            sid: NNTIndex(
                random_labeled_graph(rng, rng.randint(3, 9), extra_edges=rng.randint(0, 4)),
                depth_limit=2,
            )
            for sid in range(4)
        }
        expected = oracle(indexes, query_set)
        for name in ENGINES:
            engine = make_engine(name, query_set)
            for sid, index in indexes.items():
                engine.register_stream(sid, index.npvs)
            assert engine.candidates() == expected, name


class TestIncrementalAgreement:
    @pytest.mark.parametrize("depth", (1, 2, 3))
    def test_engines_track_updates(self, depth):
        rng = random.Random(1234 + depth)
        query_set = QuerySet(small_queries(rng), depth_limit=depth)
        engines = {name: make_engine(name, query_set) for name in ENGINES}
        indexes = {}
        for sid in range(3):
            index = NNTIndex(
                random_labeled_graph(rng, rng.randint(4, 8), extra_edges=2),
                depth_limit=depth,
            )
            indexes[sid] = index
            for engine in engines.values():
                engine.register_stream(sid, index.npvs)
                index.add_listener(StreamListenerAdapter(engine, sid))
        for step in range(120):
            sid = rng.choice(list(indexes))
            _mutate(rng, indexes[sid])
            if step % 15 == 0:
                expected = oracle(indexes, query_set)
                for name, engine in engines.items():
                    assert engine.candidates() == expected, (step, name)
        expected = oracle(indexes, query_set)
        for name, engine in engines.items():
            assert engine.candidates() == expected, name

    def test_stream_drained_to_empty(self, rng):
        """Every vertex removed: engines must report no coverage."""
        query_set = QuerySet(small_queries(rng, count=2), depth_limit=2)
        index = NNTIndex(random_labeled_graph(rng, 4, extra_edges=1), depth_limit=2)
        engines = {name: make_engine(name, query_set) for name in ENGINES}
        for name, engine in engines.items():
            engine.register_stream(0, index.npvs)
            index.add_listener(StreamListenerAdapter(engine, 0))
        for u, v, _ in list(index.graph.edges()):
            if index.graph.has_edge(u, v):
                index.delete_edge(u, v)
        assert index.graph.num_vertices == 0
        for name, engine in engines.items():
            assert engine.candidates() == set(), name


def _mutate(rng: random.Random, index: NNTIndex) -> None:
    edges = list(index.graph.edges())
    vertices = list(index.graph.vertices())
    roll = rng.random()
    if edges and roll < 0.45:
        u, v, _ = rng.choice(edges)
        index.delete_edge(u, v)
    elif len(vertices) >= 2 and roll < 0.9:
        u, v = rng.sample(vertices, 2)
        if not index.graph.has_edge(u, v):
            index.insert_edge(u, v, rng.choice(["x", "y"]))
    else:
        new_id = max([v for v in vertices if isinstance(v, int)], default=-1) + 1
        if vertices:
            index.insert_edge(rng.choice(vertices), new_id, "x", None, rng.choice("ABC"))
        else:
            index.insert_edge(new_id, new_id + 1, "x", "A", "B")


class TestEmptyQueryGraph:
    def test_single_vertex_query(self, rng):
        """A one-vertex query has an empty NPV: it is 'covered' exactly
        when the stream has at least one vertex (all engines agree)."""
        lone = LabeledGraph()
        lone.add_vertex(0, "A")
        query_set = QuerySet({"lone": lone}, depth_limit=2)
        stream = random_labeled_graph(rng, 3, extra_edges=1)
        for name in ENGINES:
            engine = make_engine(name, query_set)
            engine.register_stream("full", NNTIndex(stream, 2).npvs)
            engine.register_stream("empty", {})
            assert engine.is_candidate("full", "lone"), name
            assert not engine.is_candidate("empty", "lone"), name


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 100_000), min_size=3, max_size=25))
def test_property_engines_always_agree(seeds):
    rng = random.Random(42)
    query_set = QuerySet(small_queries(rng, count=3), depth_limit=2)
    engines = {name: make_engine(name, query_set) for name in ENGINES}
    index = NNTIndex(random_labeled_graph(rng, 5, extra_edges=2), depth_limit=2)
    for engine in engines.values():
        engine.register_stream(0, index.npvs)
        index.add_listener(StreamListenerAdapter(engine, 0))
    for seed in seeds:
        _mutate(random.Random(seed), index)
    expected = oracle({0: index}, query_set)
    for name, engine in engines.items():
        assert engine.candidates() == expected, name
