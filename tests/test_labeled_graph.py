"""Unit tests for the labeled-graph substrate."""

import pytest
from hypothesis import given, settings

from repro.graph import GraphError, LabeledGraph, edge_key

from .conftest import graph_strategy


def simple_graph() -> LabeledGraph:
    return LabeledGraph.from_vertices_and_edges(
        [(1, "A"), (2, "B"), (3, "C")],
        [(1, 2, "x"), (2, 3, "y")],
    )


class TestVertices:
    def test_add_and_query(self):
        graph = LabeledGraph()
        graph.add_vertex("v", "L")
        assert graph.has_vertex("v")
        assert graph.vertex_label("v") == "L"
        assert graph.num_vertices == 1

    def test_duplicate_vertex_rejected(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        with pytest.raises(GraphError):
            graph.add_vertex(1, "B")

    def test_missing_vertex_label_raises(self):
        with pytest.raises(GraphError):
            LabeledGraph().vertex_label("nope")

    def test_remove_vertex_drops_incident_edges(self):
        graph = simple_graph()
        graph.remove_vertex(2)
        assert not graph.has_vertex(2)
        assert graph.num_edges == 0
        assert graph.degree(1) == 0

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            simple_graph().remove_vertex(99)

    def test_label_histogram(self):
        graph = simple_graph()
        graph.add_vertex(4, "A")
        assert graph.label_histogram() == {"A": 2, "B": 1, "C": 1}

    def test_contains_and_len(self):
        graph = simple_graph()
        assert 1 in graph
        assert 99 not in graph
        assert len(graph) == 3


class TestEdges:
    def test_add_edge_both_directions_visible(self):
        graph = simple_graph()
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.edge_label(2, 1) == "x"

    def test_self_loop_rejected(self):
        graph = simple_graph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, "z")

    def test_duplicate_edge_rejected(self):
        graph = simple_graph()
        with pytest.raises(GraphError):
            graph.add_edge(2, 1, "z")

    def test_edge_to_missing_vertex_rejected(self):
        graph = simple_graph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 42, "z")

    def test_remove_edge(self):
        graph = simple_graph()
        graph.remove_edge(2, 1)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1

    def test_remove_missing_edge_raises(self):
        graph = simple_graph()
        with pytest.raises(GraphError):
            graph.remove_edge(1, 3)

    def test_edge_label_missing_raises(self):
        with pytest.raises(GraphError):
            simple_graph().edge_label(1, 3)

    def test_edges_iterates_each_once(self):
        graph = simple_graph()
        edges = list(graph.edges())
        assert len(edges) == 2
        assert len({edge_key(u, v) for u, v, _ in edges}) == 2

    def test_degree_and_neighbors(self):
        graph = simple_graph()
        assert graph.degree(2) == 2
        assert set(graph.neighbors(2)) == {1, 3}
        assert dict(graph.neighbor_items(2)) == {1: "x", 3: "y"}

    def test_max_degree(self):
        assert simple_graph().max_degree() == 2
        assert LabeledGraph().max_degree() == 0


class TestStructure:
    def test_connected_components(self):
        graph = simple_graph()
        graph.add_vertex(4, "D")
        components = graph.connected_components()
        assert sorted(len(c) for c in components) == [1, 3]
        assert not graph.is_connected()

    def test_empty_and_singleton_connected(self):
        assert LabeledGraph().is_connected()
        single = LabeledGraph()
        single.add_vertex(0, "A")
        assert single.is_connected()

    def test_subgraph_is_induced(self):
        graph = simple_graph()
        sub = graph.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_vertex(3)

    def test_largest_component_subgraph(self):
        graph = simple_graph()
        graph.add_vertex(4, "D")
        largest = graph.largest_component_subgraph()
        assert largest.num_vertices == 3
        assert not largest.has_vertex(4)

    def test_relabeled(self):
        graph = simple_graph()
        renamed = graph.relabeled({1: "a", 2: "b"})
        assert renamed.has_edge("a", "b")
        assert renamed.vertex_label("a") == "A"
        assert renamed.has_vertex(3)  # unmapped ids survive
        assert graph.has_vertex(1)  # original untouched

    def test_relabeled_requires_injective(self):
        with pytest.raises(GraphError):
            simple_graph().relabeled({1: 3})

    def test_copy_is_independent(self):
        graph = simple_graph()
        clone = graph.copy()
        clone.remove_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not clone.has_edge(1, 2)

    def test_equality(self):
        assert simple_graph() == simple_graph()
        other = simple_graph()
        other.remove_edge(1, 2)
        assert simple_graph() != other
        assert simple_graph() != "not a graph"


class TestEdgeKey:
    def test_symmetric(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_mixed_types_total(self):
        assert edge_key("a", 1) == edge_key(1, "a")


@settings(max_examples=40, deadline=None)
@given(graph_strategy(connected=True))
def test_generated_graphs_are_connected(graph):
    assert graph.is_connected()


@settings(max_examples=40, deadline=None)
@given(graph_strategy())
def test_copy_equals_original(graph):
    assert graph.copy() == graph


@settings(max_examples=40, deadline=None)
@given(graph_strategy())
def test_degree_sum_is_twice_edges(graph):
    assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges
