"""KPI-gated E2E scenario suites (fraud-ring, network-intrusion).

Each scenario under ``tests/fixtures/scenarios/`` is a deterministic
seeded workload in the ``{raw,expected,scenarios}`` layout: a pattern
graph-set and a serve text-protocol event script in ``raw/``, a golden
networkx-oracle truth file in ``expected/`` (regenerate both with
``generate.py`` in that directory), and a descriptor in ``scenarios/``
binding them to KPI gates.  Both scenarios churn the query set
mid-stream — an ``addq`` once the streams are warm, a ``delq`` near the
end — so the gates hold across live registration and retirement:

* **recall == 1.0** — at every poll, every oracle-true pair is flagged
  (the paper's no-false-negative guarantee, end to end through the
  serve layer);
* **false-positive ratio** — flagged-but-not-true pairs stay under the
  descriptor's bound (the filter must stay useful, not just sound);
* **p95 commit latency** — from the ``serve.commit.seconds`` histogram
  the commit spans feed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.dashboard import histogram_quantile
from repro.graph.io import read_graph_set
from repro.obs import Registry
from repro.serve import serve_lines

SCENARIO_DIR = Path(__file__).parent / "fixtures" / "scenarios"
SCENARIOS = sorted(path.name for path in (SCENARIO_DIR / "scenarios").glob("*.json"))


@pytest.fixture(autouse=True)
def clean_obs():
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if not was_enabled:
        obs.disable()


def load_descriptor(name: str) -> dict:
    return json.loads((SCENARIO_DIR / "scenarios" / name).read_text(encoding="utf-8"))


def run_scenario(descriptor: dict) -> tuple[StreamMonitor, list[dict]]:
    raw_dir = SCENARIO_DIR / "raw"
    patterns = dict(read_graph_set(raw_dir / descriptor["patterns"]))
    queries = {key: patterns[key] for key in descriptor["initial_queries"]}
    monitor = StreamMonitor(queries, method=descriptor["method"])
    lines = [
        line.replace("{RAW}", str(raw_dir))
        for line in (raw_dir / descriptor["events"]).read_text().splitlines()
    ]
    replies: list[dict] = []
    serve_lines(monitor, lines, replies.append)
    return monitor, replies


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestScenarioSuite:
    def test_kpi_gates(self, scenario):
        descriptor = load_descriptor(scenario)
        expected = json.loads(
            (SCENARIO_DIR / "expected" / descriptor["expected"]).read_text()
        )
        monitor, replies = run_scenario(descriptor)

        assert all(reply.get("ok") for reply in replies), [
            reply for reply in replies if not reply.get("ok")
        ]
        reported = [
            {tuple(pair) for pair in reply["matches"]}
            for reply in replies
            if reply.get("cmd") == "matches"
        ]
        polls = expected["polls"]
        assert len(reported) == len(polls)

        # KPI 1: recall == 1.0 at every poll (zero false negatives).
        true_total = 0
        flagged_total = 0
        for poll, flagged in zip(polls, reported):
            truth = {tuple(pair) for pair in poll["truth"]}
            missed = truth - flagged
            assert not missed, f"t={poll['t']}: recall < 1.0, missed {missed}"
            true_total += len(truth)
            flagged_total += len(flagged)

        # KPI 2: the filter stays tight, not merely sound.
        false_positives = flagged_total - true_total
        fp_ratio = false_positives / flagged_total if flagged_total else 0.0
        assert fp_ratio <= descriptor["kpi"]["max_fp_ratio"], (
            f"fp_ratio {fp_ratio:.3f} over budget "
            f"{descriptor['kpi']['max_fp_ratio']}"
        )

        # KPI 3: p95 commit latency from the span-fed histogram.
        commit_hist = obs.get_registry().summary().get("serve.commit.seconds")
        assert commit_hist and commit_hist["count"] == len(polls)
        p95 = histogram_quantile(commit_hist, 0.95)
        assert p95 is not None and p95 <= descriptor["kpi"]["p95_commit_seconds"]

        # Exactness at rest: final verified matches equal the oracle.
        final = {tuple(pair) for pair in expected["final_verified"]}
        assert set(monitor.verified_matches()) == final

    def test_churn_commands_ran_live(self, scenario):
        """The mid-stream addq/delq really went through the bridge: the
        replies carry trace ids and the final query set reflects them."""
        descriptor = load_descriptor(scenario)
        monitor, replies = run_scenario(descriptor)
        adds = [reply for reply in replies if reply.get("cmd") == "addq"]
        drops = [reply for reply in replies if reply.get("cmd") == "delq"]
        assert adds and drops
        for reply in adds + drops:
            assert reply["ok"] is True
            assert reply.get("trace"), "churn reply is missing its trace id"
        final_ids = set(monitor.query_ids())
        assert {reply["query"] for reply in adds} <= final_ids
        assert not ({reply["query"] for reply in drops} & final_ids)


def test_descriptors_are_complete():
    assert SCENARIOS, "no scenario descriptors found"
    names = set()
    for scenario in SCENARIOS:
        descriptor = load_descriptor(scenario)
        names.add(descriptor["name"])
        for key in ("patterns", "events"):
            assert (SCENARIO_DIR / "raw" / descriptor[key]).exists()
        assert (SCENARIO_DIR / "expected" / descriptor["expected"]).exists()
        kpi = descriptor["kpi"]
        assert kpi["recall"] == 1.0
        assert 0.0 < kpi["max_fp_ratio"] < 1.0
        assert kpi["p95_commit_seconds"] > 0.0
    assert {"fraud_ring", "intrusion"} <= names
