"""Tests for the static GraphDatabase filter-and-verify API."""

import random

import pytest

from repro import GraphDatabase, LabeledGraph
from repro.isomorphism import SubgraphMatcher
from repro.nnt.projection import DimensionScheme

from .conftest import extract_connected_subgraph, random_labeled_graph


def chain(labels, edge_label="-"):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, edge_label)
    return graph


class TestConstruction:
    def test_from_list(self):
        db = GraphDatabase.from_list([chain(["A", "B"]), chain(["C", "D"])])
        assert len(db) == 2
        assert set(db.graphs) == {0, 1}

    def test_custom_scheme(self):
        db = GraphDatabase(
            {0: chain(["A", "B"], "x")},
            scheme=DimensionScheme(include_edge_label=True),
        )
        assert db.filter_candidates(chain(["A", "B"], "x")) == {0}
        assert db.filter_candidates(chain(["A", "B"], "y")) == set()


class TestFiltering:
    def test_basic_filter(self):
        db = GraphDatabase.from_list([chain(["A", "B", "C"]), chain(["C", "C"])])
        assert db.filter_candidates(chain(["A", "B"])) == {0}

    def test_search_with_verification(self):
        db = GraphDatabase.from_list([chain(["A", "B", "C"]), chain(["A", "C", "B"])])
        query = chain(["A", "B"])
        assert db.search(query, verify=True) == {0}
        assert db.search(query, verify=False) >= {0}

    def test_search_without_verify_is_filter(self):
        db = GraphDatabase.from_list([chain(["A", "B"])])
        query = chain(["A", "B"])
        assert db.search(query, verify=False) == db.filter_candidates(query)

    @pytest.mark.parametrize("trial", range(6))
    def test_filter_is_sound(self, trial):
        rng = random.Random(5100 + trial)
        graphs = [
            random_labeled_graph(rng, rng.randint(4, 8), extra_edges=rng.randint(0, 3))
            for _ in range(6)
        ]
        db = GraphDatabase.from_list(graphs)
        query = extract_connected_subgraph(rng, rng.choice(graphs), 3)
        truth = {
            i for i, g in enumerate(graphs) if SubgraphMatcher(g).is_subgraph(query)
        }
        candidates = db.filter_candidates(query)
        assert truth <= candidates
        assert db.search(query, verify=True) == truth

    def test_deeper_index_never_weaker(self):
        rng = random.Random(5200)
        graphs = [random_labeled_graph(rng, 7, extra_edges=3) for _ in range(8)]
        query = extract_connected_subgraph(rng, graphs[0], 3)
        shallow = GraphDatabase.from_list(graphs, depth_limit=1)
        deep = GraphDatabase.from_list(graphs, depth_limit=3)
        assert deep.filter_candidates(query) <= shallow.filter_candidates(query)


class TestVectorized:
    def test_equivalence_on_molecules(self):
        from repro.datasets import generate_molecule_set, make_query_set

        molecules = generate_molecule_set(40, seed=3)
        queries = make_query_set(molecules, 6, 10, seed=4)
        scalar = GraphDatabase.from_list(molecules)
        vectorized = GraphDatabase.from_list(molecules, vectorized=True)
        for query in queries:
            assert scalar.filter_candidates(query) == vectorized.filter_candidates(query)

    def test_equivalence_random(self):
        rng = random.Random(5300)
        graphs = [random_labeled_graph(rng, rng.randint(3, 8), extra_edges=3) for _ in range(8)]
        scalar = GraphDatabase.from_list(graphs)
        vectorized = GraphDatabase.from_list(graphs, vectorized=True)
        for _ in range(10):
            query = extract_connected_subgraph(rng, rng.choice(graphs), 3)
            assert scalar.filter_candidates(query) == vectorized.filter_candidates(query)
            assert scalar.search(query) == vectorized.search(query)

    def test_empty_graph_in_db(self):
        db = GraphDatabase({0: LabeledGraph(), 1: chain(["A", "B"])}, vectorized=True)
        assert db.filter_candidates(chain(["A", "B"])) == {1}

    def test_missing_dimension_fast_reject(self):
        db = GraphDatabase.from_list([chain(["A", "A"])], vectorized=True)
        assert db.filter_candidates(chain(["B", "B"])) == set()
