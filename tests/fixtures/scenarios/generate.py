"""Regenerate the KPI-gated scenario fixtures, deterministically.

Layout (the ``{raw,expected,scenarios}`` convention):

* ``raw/``       — inputs: pattern graph-set files and serve text-protocol
  event scripts (``{RAW}`` is substituted with this directory's absolute
  path by the test runner, so ``addq`` lines resolve on any machine).
* ``expected/``  — golden outputs: the networkx-oracle truth at every
  poll plus the final exact match set, independent of the code under
  test.
* ``scenarios/`` — descriptors binding raw + expected together with the
  KPI gates (recall, false-positive ratio, p95 commit latency).

Both scenarios exercise **mid-stream query churn**: a pattern is
registered live (``addq``) after the streams are warm and another is
retired (``delq``) near the end, so the golden truth changes query set
mid-run.

Run from the repo root:

    PYTHONPATH=src python tests/fixtures/scenarios/generate.py
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import networkx as nx
from networkx.algorithms import isomorphism as nxiso

from repro.graph import EdgeChange, LabeledGraph, apply_change
from repro.graph.io import write_graph_set

HERE = Path(__file__).parent
VERSION = "v1"


# ----------------------------------------------------------------------
# oracle (independent of repro's own VF2)
# ----------------------------------------------------------------------
def to_networkx(graph: LabeledGraph) -> "nx.Graph":
    out = nx.Graph()
    for vertex in graph.vertices():
        out.add_node(vertex, label=graph.vertex_label(vertex))
    for u, v, label in graph.edges():
        out.add_edge(u, v, label=label)
    return out


def oracle_iso(query: LabeledGraph, target: LabeledGraph) -> bool:
    matcher = nxiso.GraphMatcher(
        to_networkx(target),
        to_networkx(query),
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["label"] == b["label"],
    )
    return matcher.subgraph_is_monomorphic()


def truth_pairs(mirrors: dict, queries: dict) -> list[list[str]]:
    return sorted(
        [stream_id, query_id]
        for stream_id, mirror in mirrors.items()
        for query_id, query in queries.items()
        if oracle_iso(query, mirror)
    )


# ----------------------------------------------------------------------
# event-script builder
# ----------------------------------------------------------------------
class ScriptBuilder:
    """Emits serve text-protocol lines while tracking exact mirrors of
    every stream (deletes first within a commit, matching the monitor's
    batch order) and the live query set under churn."""

    def __init__(self, patterns: dict, initial_queries: list[str], patterns_file: str):
        self.patterns = patterns
        self.patterns_file = patterns_file
        self.live = {name: patterns[name] for name in initial_queries}
        self.mirrors: dict[str, LabeledGraph] = {}
        self.lines: list[str] = []
        self.polls: list[dict] = []

    def add_stream(self, stream_id: str) -> None:
        self.mirrors[stream_id] = LabeledGraph()
        self.lines.append(f"stream {stream_id}")

    def insert(self, stream_id: str, u: str, v: str, edge: str, lu: str, lv: str) -> bool:
        mirror = self.mirrors[stream_id]
        if mirror.has_edge(u, v):
            return False
        change = EdgeChange.insert(u, v, edge, lu, lv)
        apply_change(mirror, change)
        self.lines.append(f"ins {stream_id} {u} {v} {edge} {lu} {lv}")
        return True

    def delete(self, stream_id: str, u: str, v: str) -> None:
        change = EdgeChange.delete(u, v)
        apply_change(self.mirrors[stream_id], change)
        self.lines.append(f"del {stream_id} {u} {v}")

    def register(self, query_id: str) -> None:
        self.live[query_id] = self.patterns[query_id]
        self.lines.append(f"addq {query_id} {{RAW}}/{self.patterns_file} {query_id}")

    def deregister(self, query_id: str) -> None:
        del self.live[query_id]
        self.lines.append(f"delq {query_id}")

    def poll(self, timestamp: int) -> None:
        """commit + matches, recording the oracle truth at this poll."""
        self.lines.append("commit")
        self.lines.append("matches")
        self.polls.append(
            {"t": timestamp, "truth": truth_pairs(self.mirrors, self.live)}
        )

    def finish(self) -> dict:
        self.lines.append("quit")
        return {
            "polls": self.polls,
            "final_verified": self.polls[-1]["truth"] if self.polls else [],
        }


# ----------------------------------------------------------------------
# fraud-ring scenario
# ----------------------------------------------------------------------
ACCOUNT_LABELS = ["acct", "mule", "merchant", "bank"]  # account id % 4


def fraud_patterns() -> dict:
    ring = LabeledGraph.from_vertices_and_edges(
        [("0", "acct"), ("1", "acct"), ("2", "acct")],
        [("0", "1", "pay"), ("1", "2", "pay"), ("2", "0", "pay")],
    )
    fan = LabeledGraph.from_vertices_and_edges(
        [("0", "acct"), ("1", "acct"), ("2", "mule"), ("3", "bank")],
        [("0", "2", "pay"), ("1", "2", "pay"), ("2", "3", "pay")],
    )
    chain = LabeledGraph.from_vertices_and_edges(
        [("0", "acct"), ("1", "mule"), ("2", "mule"), ("3", "merchant")],
        [("0", "1", "pay"), ("1", "2", "pay"), ("2", "3", "pay")],
    )
    return {"money-cycle": ring, "mule-fan-in": fan, "layering-chain": chain}


def account_label(account: int) -> str:
    return ACCOUNT_LABELS[account % len(ACCOUNT_LABELS)]


def payment_churn(builder: ScriptBuilder, rng: random.Random, stream_id: str) -> None:
    mirror = builder.mirrors[stream_id]
    edges = sorted((u, v) for u, v, _ in mirror.edges())
    if edges and rng.random() < 0.3:
        u, v = rng.choice(edges)
        builder.delete(stream_id, u, v)
    for _ in range(rng.randint(1, 3)):
        a, b = rng.sample(range(12), 2)
        builder.insert(
            stream_id, str(a), str(b), "pay", account_label(a), account_label(b)
        )


def inject(builder: ScriptBuilder, stream_id: str, edges: list, label_of) -> None:
    for a, b in edges:
        builder.insert(stream_id, str(a), str(b), builder.edge_label, label_of(a), label_of(b))


def build_fraud_ring() -> tuple[ScriptBuilder, dict]:
    patterns = fraud_patterns()
    patterns_file = f"fraud_ring_patterns_{VERSION}.txt"
    builder = ScriptBuilder(patterns, ["money-cycle", "mule-fan-in"], patterns_file)
    builder.edge_label = "pay"
    rng = random.Random(1896)
    for stream_id in ("cards", "wires"):
        builder.add_stream(stream_id)
    for timestamp in range(1, 15):
        for stream_id in ("cards", "wires"):
            payment_churn(builder, rng, stream_id)
        if timestamp == 6:
            # a laundering ring among three accounts (ids ≡ 0 mod 4)
            inject(builder, "wires", [(0, 4), (4, 8), (8, 0)], account_label)
        if timestamp == 10:
            # a layering chain: acct 8 -> mule 5 -> mule 9 -> merchant 2
            inject(builder, "wires", [(8, 5), (5, 9), (9, 2)], account_label)
        builder.poll(timestamp)
        if timestamp == 8:
            builder.register("layering-chain")  # analyst adds a typology live
        if timestamp == 12:
            builder.deregister("mule-fan-in")  # retired typology
    golden = builder.finish()
    return builder, golden


# ----------------------------------------------------------------------
# network-intrusion scenario
# ----------------------------------------------------------------------
HOST_LABELS = ["ws", "db", "dns", "gw"]  # host id % 4


def intrusion_patterns() -> dict:
    scan = LabeledGraph.from_vertices_and_edges(
        [("0", "ws"), ("1", "gw"), ("2", "db"), ("3", "db")],
        [("0", "1", "conn"), ("0", "2", "conn"), ("0", "3", "conn")],
    )
    relay = LabeledGraph.from_vertices_and_edges(
        [("0", "db"), ("1", "ws"), ("2", "gw")],
        [("0", "1", "conn"), ("1", "2", "conn")],
    )
    lateral = LabeledGraph.from_vertices_and_edges(
        [("0", "ws"), ("1", "ws"), ("2", "ws"), ("3", "db")],
        [("0", "1", "conn"), ("1", "2", "conn"), ("2", "0", "conn"), ("2", "3", "conn")],
    )
    return {"port-scan": scan, "exfil-relay": relay, "lateral-move": lateral}


def host_label(host: int) -> str:
    return HOST_LABELS[host % len(HOST_LABELS)]


def traffic_churn(builder: ScriptBuilder, rng: random.Random, stream_id: str) -> None:
    mirror = builder.mirrors[stream_id]
    edges = sorted((u, v) for u, v, _ in mirror.edges())
    if edges and rng.random() < 0.4:
        u, v = rng.choice(edges)
        builder.delete(stream_id, u, v)
    for _ in range(rng.randint(1, 3)):
        a, b = rng.sample(range(12), 2)
        builder.insert(
            stream_id, str(a), str(b), "conn", host_label(a), host_label(b)
        )


def build_intrusion() -> tuple[ScriptBuilder, dict]:
    patterns = intrusion_patterns()
    patterns_file = f"intrusion_patterns_{VERSION}.txt"
    builder = ScriptBuilder(patterns, ["port-scan", "lateral-move"], patterns_file)
    builder.edge_label = "conn"
    rng = random.Random(2009)
    for stream_id in ("subnet-a", "subnet-b"):
        builder.add_stream(stream_id)
    for timestamp in range(1, 13):
        for stream_id in ("subnet-a", "subnet-b"):
            traffic_churn(builder, rng, stream_id)
        if timestamp == 6:
            # host 0 (a workstation) scans the gateway and two databases
            inject(builder, "subnet-b", [(0, 3), (0, 1), (0, 5)], host_label)
        if timestamp == 8:
            # exfiltration relay: db 1 -> ws 4 -> gw 3
            inject(builder, "subnet-a", [(1, 4), (4, 3)], host_label)
        builder.poll(timestamp)
        if timestamp == 4:
            builder.register("exfil-relay")  # new IOC from threat intel
        if timestamp == 9:
            builder.deregister("lateral-move")
    golden = builder.finish()
    return builder, golden


# ----------------------------------------------------------------------
# write everything
# ----------------------------------------------------------------------
def emit(name: str, builder: ScriptBuilder, golden: dict, kpi: dict, method: str) -> None:
    patterns_path = HERE / "raw" / builder.patterns_file
    names = sorted(builder.patterns)
    write_graph_set(
        [builder.patterns[key] for key in names], patterns_path, names=names
    )
    (HERE / "raw" / f"{name}_events_{VERSION}.txt").write_text(
        "\n".join(builder.lines) + "\n", encoding="utf-8"
    )
    (HERE / "expected" / f"{name}_expected_matches_{VERSION}.json").write_text(
        json.dumps(golden, indent=2) + "\n", encoding="utf-8"
    )
    descriptor = {
        "name": name,
        "version": VERSION,
        "method": method,
        "patterns": builder.patterns_file,
        "initial_queries": sorted(
            set(builder.patterns)
            - {
                line.split()[1]
                for line in builder.lines
                if line.startswith("addq ")
            }
        ),
        "events": f"{name}_events_{VERSION}.txt",
        "expected": f"{name}_expected_matches_{VERSION}.json",
        "kpi": kpi,
    }
    (HERE / "scenarios" / f"{name}_{VERSION}.json").write_text(
        json.dumps(descriptor, indent=2) + "\n", encoding="utf-8"
    )
    matched = sum(len(poll["truth"]) for poll in golden["polls"])
    print(f"{name}: {len(builder.lines)} lines, {len(golden['polls'])} polls, "
          f"{matched} true pairs over the run")


def main() -> None:
    kpi = {"recall": 1.0, "max_fp_ratio": 0.5, "p95_commit_seconds": 0.25}
    builder, golden = build_fraud_ring()
    emit("fraud_ring", builder, golden, kpi, method="dsc")
    builder, golden = build_intrusion()
    emit("intrusion", builder, golden, kpi, method="dsc")


if __name__ == "__main__":
    main()
