"""Meta tests: documentation coverage and the paper's complexity lemmas.

These make two kinds of repository-level promises executable:
(1) every public module, class and function carries a docstring, and
(2) the maintenance cost bound of Lemma 3.2 holds on instrumented runs.
"""

import importlib
import inspect
import pkgutil
import random

import pytest

import repro
from repro.graph import LabeledGraph
from repro.nnt import NNTIndex, build_nnt

from .conftest import random_labeled_graph


def _walk_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_public_modules())


class TestDocumentation:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        undocumented = []
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(member) or inspect.isfunction(member):
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
                if inspect.isclass(member):
                    for method_name, method in vars(member).items():
                        if method_name.startswith("_") or not inspect.isfunction(method):
                            continue
                        if method.__doc__ and method.__doc__.strip():
                            continue
                        # An implementation may inherit its contract's
                        # docstring from a documented base-class method.
                        inherited = any(
                            getattr(getattr(base, method_name, None), "__doc__", None)
                            for base in member.__mro__[1:]
                        )
                        if not inherited:
                            undocumented.append(
                                f"{module.__name__}.{name}.{method_name}"
                            )
        assert not undocumented, undocumented


class TestComplexityLemmas:
    def test_lemma_3_2_insertion_bound(self):
        """Inserting edge (a,b) touches O(appearances * r^(l-1)) tree
        nodes: the created node count is bounded by the number of
        pre-existing appearances of a and b times the per-appearance
        subtree bound sum_{k<l} r^k."""
        rng = random.Random(1221)
        for _ in range(10):
            graph = random_labeled_graph(rng, 8, extra_edges=rng.randint(0, 5))
            index = NNTIndex(graph, depth_limit=3)
            vertices = list(graph.vertices())
            u, v = rng.sample(vertices, 2)
            if index.graph.has_edge(u, v):
                continue
            appearances = len(index.node_index.get(u, ())) + len(
                index.node_index.get(v, ())
            )
            before = index.stats["tree_nodes_added"]
            index.insert_edge(u, v, "-")
            created = index.stats["tree_nodes_added"] - before
            r = max(1, index.graph.max_degree())
            per_appearance = sum(r**k for k in range(index.depth_limit))
            assert created <= appearances * per_appearance

    def test_deletion_removes_exactly_the_insertion(self):
        """Delete immediately after insert restores the exact node count
        (the subtree hung under every appearance is removed whole)."""
        rng = random.Random(909)
        graph = random_labeled_graph(rng, 7, extra_edges=3)
        index = NNTIndex(graph, depth_limit=3)
        total_nodes = lambda: sum(len(b) for b in index.node_index.values())
        baseline = total_nodes()
        vertices = list(graph.vertices())
        for _ in range(5):
            u, v = rng.sample(vertices, 2)
            if index.graph.has_edge(u, v):
                continue
            index.insert_edge(u, v, "-")
            index.delete_edge(u, v)
            assert total_nodes() == baseline

    def test_nnt_size_bound(self):
        """|NNT(u)| <= sum_{k<=l} r^k (Definition 3.1's worst case)."""
        rng = random.Random(707)
        graph = random_labeled_graph(rng, 9, extra_edges=6)
        r = graph.max_degree()
        for depth in (1, 2, 3):
            bound = sum(r**k for k in range(depth + 1))
            for vertex in graph.vertices():
                assert build_nnt(graph, vertex, depth).size() <= bound


class TestDoctests:
    """Run every module's doctests (examples in docstrings must work)."""

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_doctests_pass(self, module):
        import doctest

        result = doctest.testmod(module)
        assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
