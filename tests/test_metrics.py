"""Tests for metrics and timing helpers."""

import math
import time

import pytest

from repro.core.metrics import (
    Confusion,
    RunningStats,
    Stopwatch,
    candidate_ratio,
    compare_with_truth,
)


class TestCandidateRatio:
    def test_basic(self):
        assert candidate_ratio(5, 10, 10) == 0.05

    def test_empty_universe(self):
        assert candidate_ratio(0, 0, 10) == 0.0


class TestConfusion:
    def test_compare_with_truth(self):
        confusion = compare_with_truth(reported={1, 2, 3}, truth={2, 3, 4})
        assert confusion.true_positives == 2
        assert confusion.false_positives == 1
        assert confusion.false_negatives == 1
        assert not confusion.sound

    def test_sound_filter(self):
        confusion = compare_with_truth(reported={1, 2, 3}, truth={2})
        assert confusion.sound
        assert confusion.precision == pytest.approx(1 / 3)

    def test_precision_with_no_reports(self):
        assert compare_with_truth(set(), set()).precision == 1.0

    def test_perfect(self):
        confusion = compare_with_truth({1}, {1})
        assert confusion == Confusion(1, 0, 0)
        assert confusion.precision == 1.0


class TestRunningStats:
    def test_mean_and_extremes(self):
        stats = RunningStats()
        for value in (1.0, 2.0, 3.0):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.variance == pytest.approx(1.0)
        assert stats.stdev == pytest.approx(1.0)

    def test_single_value_no_variance(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_summary_keys(self):
        stats = RunningStats()
        stats.add(1.0)
        summary = stats.summary()
        assert set(summary) == {"count", "mean", "stdev", "min", "max"}

    def test_empty_summary(self):
        summary = RunningStats().summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        with watch:
            time.sleep(0.01)
        assert watch.total >= 0.02
        assert watch.laps.count == 2
        assert watch.mean_ms >= 10.0

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_stop_returns_lap(self):
        watch = Stopwatch()
        watch.start()
        lap = watch.stop()
        assert lap >= 0.0
        assert math.isclose(lap, watch.total)
