"""Tests for metrics and timing helpers."""

import math
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    Confusion,
    RunningStats,
    ShardCounters,
    Stopwatch,
    candidate_ratio,
    compare_with_truth,
    merge_counter_summaries,
)


class TestCandidateRatio:
    def test_basic(self):
        assert candidate_ratio(5, 10, 10) == 0.05

    def test_empty_universe(self):
        assert candidate_ratio(0, 0, 10) == 0.0


class TestConfusion:
    def test_compare_with_truth(self):
        confusion = compare_with_truth(reported={1, 2, 3}, truth={2, 3, 4})
        assert confusion.true_positives == 2
        assert confusion.false_positives == 1
        assert confusion.false_negatives == 1
        assert not confusion.sound

    def test_sound_filter(self):
        confusion = compare_with_truth(reported={1, 2, 3}, truth={2})
        assert confusion.sound
        assert confusion.precision == pytest.approx(1 / 3)

    def test_precision_with_no_reports(self):
        assert compare_with_truth(set(), set()).precision == 1.0

    def test_perfect(self):
        confusion = compare_with_truth({1}, {1})
        assert confusion == Confusion(1, 0, 0)
        assert confusion.precision == 1.0


class TestRunningStats:
    def test_mean_and_extremes(self):
        stats = RunningStats()
        for value in (1.0, 2.0, 3.0):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.variance == pytest.approx(1.0)
        assert stats.stdev == pytest.approx(1.0)

    def test_single_value_no_variance(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_summary_keys(self):
        stats = RunningStats()
        stats.add(1.0)
        summary = stats.summary()
        assert set(summary) == {"count", "mean", "stdev", "min", "max"}

    def test_empty_summary(self):
        summary = RunningStats().summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        with watch:
            time.sleep(0.01)
        assert watch.total >= 0.02
        assert watch.laps.count == 2
        assert watch.mean_ms >= 10.0

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_stop_returns_lap(self):
        watch = Stopwatch()
        watch.start()
        lap = watch.stop()
        assert lap >= 0.0
        assert math.isclose(lap, watch.total)


# ----------------------------------------------------------------------
# shard counters and fleet merging
# ----------------------------------------------------------------------
def counters_strategy():
    """A ShardCounters summary built from random recorded batches/polls."""
    batch = st.tuples(st.integers(0, 50), st.floats(0.0, 2.0, allow_nan=False))
    return st.builds(
        _summarize,
        st.lists(batch, max_size=6),
        st.integers(0, 5),
        st.integers(0, 3),
    )


def _summarize(batches, polls, checkpoints):
    counters = ShardCounters()
    for num_changes, seconds in batches:
        counters.record_batch(num_changes, seconds)
    for _ in range(polls):
        counters.record_poll(0.001)
    for _ in range(checkpoints):
        counters.record_checkpoint(0.002)
    return counters.summary()


def assert_merged_equal(left: dict, right: dict) -> None:
    assert left.keys() == right.keys()
    for key in left:
        if key == "batch_latency":
            for field in ("count", "mean", "min", "max"):
                assert left[key][field] == pytest.approx(right[key][field])
        else:
            assert left[key] == pytest.approx(right[key])


class TestMergeCounterSummaries:
    def test_counts_sum_and_latency_is_batch_weighted(self):
        a = _summarize([(10, 1.0), (10, 1.0)], polls=1, checkpoints=0)
        b = _summarize([(5, 4.0)], polls=0, checkpoints=2)
        merged = merge_counter_summaries([a, b])
        assert merged["batches"] == 3
        assert merged["changes"] == 25
        assert merged["polls"] == 1
        assert merged["checkpoints"] == 2
        latency = merged["batch_latency"]
        assert latency["count"] == 3
        assert latency["mean"] == pytest.approx((1.0 + 1.0 + 4.0) / 3)
        assert latency["min"] == pytest.approx(1.0)
        assert latency["max"] == pytest.approx(4.0)

    def test_identity_empty_summary(self):
        summary = _summarize([(3, 0.5)], polls=2, checkpoints=1)
        alone = merge_counter_summaries([summary])
        assert_merged_equal(merge_counter_summaries([summary, {}]), alone)
        assert_merged_equal(merge_counter_summaries([{}, summary]), alone)

    def test_empty_input(self):
        merged = merge_counter_summaries([])
        assert merged["batches"] == 0
        assert merged["changes_per_second"] == 0.0
        assert merged["batch_latency"]["count"] == 0

    @given(a=counters_strategy(), b=counters_strategy(), c=counters_strategy())
    @settings(max_examples=50, deadline=None)
    def test_associative(self, a, b, c):
        left = merge_counter_summaries([merge_counter_summaries([a, b]), c])
        right = merge_counter_summaries([a, merge_counter_summaries([b, c])])
        assert_merged_equal(left, right)

    @given(a=counters_strategy(), b=counters_strategy())
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, a, b):
        assert_merged_equal(
            merge_counter_summaries([a, b]), merge_counter_summaries([b, a])
        )

    @given(summaries=st.lists(counters_strategy(), max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_merge_output_is_mergeable_again(self, summaries):
        once = merge_counter_summaries(summaries)
        again = merge_counter_summaries([once])
        assert_merged_equal(once, again)
