"""Tests for incremental GraphGrep fingerprint maintenance."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.graphgrep_incremental import IncrementalGraphGrep, paths_through_edge
from repro.baselines.paths import path_fingerprint
from repro.graph import EdgeChange, GraphChangeOperation, LabeledGraph

from .conftest import random_labeled_graph

LABELS = ("A", "B", "C")


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, "-")
    return graph


class TestPathsThroughEdge:
    def test_single_edge(self):
        graph = chain(["A", "B"])
        features = paths_through_edge(graph, 0, 1, max_length=4)
        assert features == [("A", "B")]

    def test_middle_edge_of_path(self):
        graph = chain(["A", "B", "C", "D"])
        features = paths_through_edge(graph, 1, 2, max_length=4)
        # paths through (1,2): B-C, A-B-C, B-C-D, A-B-C-D
        assert sorted(features) == sorted(
            [("B", "C"), ("A", "B", "C"), ("B", "C", "D"), ("A", "B", "C", "D")]
        )

    def test_length_cap(self):
        graph = chain(["A", "B", "C", "D"])
        features = paths_through_edge(graph, 1, 2, max_length=2)
        assert sorted(features) == sorted([("B", "C"), ("A", "B", "C"), ("B", "C", "D")])

    def test_counts_each_path_once(self):
        triangle = chain(["A", "A", "A"])
        triangle.add_edge(0, 2, "-")
        features = paths_through_edge(triangle, 0, 1, max_length=3)
        # (0,1); 2-0-1; 0-1-2; 2-0-1 extended? paths: [0,1], [2,0,1], [0,1,2],
        # [2,0,1] cannot extend (2 reused); [1,0,2] not through... count:
        assert len(features) == len([f for f in features])  # no dedup applied
        # cross-check against fingerprint difference
        without = triangle.copy()
        without.remove_edge(0, 1)
        diff = {}
        for key, value in path_fingerprint(triangle, 3, num_buckets=None).items():
            delta = value - path_fingerprint(without, 3, num_buckets=None).get(key, 0)
            if delta:
                diff[key] = delta
        got: dict = {}
        for feature in features:
            got[feature] = got.get(feature, 0) + 1
        assert got == diff


class TestIncrementalFilter:
    def test_matches_full_recompute_after_batch(self):
        inc = IncrementalGraphGrep({"q": chain(["A", "B"])}, num_buckets=None)
        inc.add_stream(0, chain(["A", "B", "C"]))
        inc.apply(
            0,
            GraphChangeOperation(
                [
                    EdgeChange.delete(0, 1),
                    EdgeChange.insert(0, 2, "-", u_label="A"),
                ]
            ),
        )
        assert inc.fingerprint(0) == path_fingerprint(inc.graph(0), 4, num_buckets=None)

    def test_vertex_drop_and_recreate(self):
        inc = IncrementalGraphGrep({"q": chain(["A", "B"])}, num_buckets=None)
        inc.add_stream(0, chain(["A", "B"]))
        inc.apply_change(0, EdgeChange.delete(0, 1))  # both vertices drop
        assert inc.graph(0).num_vertices == 0
        assert inc.fingerprint(0) == {}
        inc.apply_change(0, EdgeChange.insert(5, 6, "-", "C", "C"))
        assert inc.fingerprint(0) == path_fingerprint(inc.graph(0), 4, num_buckets=None)

    def test_candidates_track_changes(self):
        inc = IncrementalGraphGrep({"abc": chain(["A", "B", "C"])})
        inc.add_stream(0, chain(["A", "B"]))
        assert not inc.is_candidate(0, "abc")
        inc.apply_change(0, EdgeChange.insert(1, 2, "-", v_label="C"))
        assert inc.is_candidate(0, "abc")
        assert inc.candidates() == {(0, "abc")}

    def test_remove_stream(self):
        inc = IncrementalGraphGrep({"q": chain(["A", "B"])})
        inc.add_stream(0, chain(["A", "B"]))
        inc.remove_stream(0)
        assert inc.candidates() == set()

    @pytest.mark.parametrize("buckets", (None, 128))
    def test_fuzz_equals_recompute(self, buckets):
        rng = random.Random(17 + (buckets or 0))
        inc = IncrementalGraphGrep({"q": chain(["A", "B"])}, num_buckets=buckets)
        inc.add_stream(0, random_labeled_graph(rng, 6, extra_edges=3))
        for step in range(100):
            graph = inc.graph(0)
            edges = list(graph.edges())
            vertices = list(graph.vertices())
            if edges and rng.random() < 0.45:
                u, v, _ = rng.choice(edges)
                inc.apply_change(0, EdgeChange.delete(u, v))
            elif len(vertices) >= 2 and rng.random() < 0.8:
                u, v = rng.sample(vertices, 2)
                if not graph.has_edge(u, v):
                    inc.apply_change(0, EdgeChange.insert(u, v, "-"))
            else:
                new_id = max([x for x in vertices if isinstance(x, int)], default=-1) + 1
                if vertices:
                    inc.apply_change(
                        0,
                        EdgeChange.insert(
                            rng.choice(vertices), new_id, "-", None, rng.choice(LABELS)
                        ),
                    )
                else:
                    inc.apply_change(
                        0, EdgeChange.insert(0, 1, "-", rng.choice(LABELS), rng.choice(LABELS))
                    )
            assert inc.fingerprint(0) == path_fingerprint(
                inc.graph(0), 4, num_buckets=buckets
            ), step


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 4))
def test_property_edge_delta_equals_fingerprint_difference(seed, max_length):
    """paths_through_edge must equal the with/without fingerprint diff."""
    rng = random.Random(seed)
    graph = random_labeled_graph(rng, rng.randint(3, 7), extra_edges=rng.randint(0, 4))
    edges = list(graph.edges())
    if not edges:
        return
    u, v, _ = rng.choice(edges)
    with_edge = path_fingerprint(graph, max_length, num_buckets=None)
    without = graph.copy()
    without.remove_edge(u, v)
    without_edge = path_fingerprint(without, max_length, num_buckets=None)
    expected: dict = {}
    for key in set(with_edge) | set(without_edge):
        delta = with_edge.get(key, 0) - without_edge.get(key, 0)
        if delta:
            expected[key] = delta
    got: dict = {}
    for feature in paths_through_edge(graph, u, v, max_length):
        got[feature] = got.get(feature, 0) + 1
    assert got == expected
