"""Trace identity and export: id minting, span-tree nesting, envelope
propagation across the process boundary, Chrome/Perfetto export, and
the recovery contract (journal-replayed commands open fresh traces —
no orphan parent ids).

The cross-process tests drive a real 2-worker :class:`ShardedMonitor`
and assert the PR's core acceptance property: every worker-side
``monitor.apply`` span reaches a coordinator-side ancestor by following
``parent_id`` links through the collected record set.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time

import pytest

from repro import obs
from repro.obs import Registry, TraceContext
from repro.obs import trace as trace_mod

from .conftest import random_labeled_graph


@pytest.fixture(autouse=True)
def clean_obs():
    """Fresh registry, empty span ring, no open frames or attachments."""
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    trace_mod.reset()
    previous_label = trace_mod._process_label
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    trace_mod.reset()
    trace_mod._process_label = previous_label
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


def small_workload(seed: int, streams: int = 3, timestamps: int = 4):
    from repro.datasets.stream_gen import synthesize_stream

    rng = random.Random(seed)
    queries = {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(3)
    }
    stream_map = {}
    for i in range(streams):
        base = random_labeled_graph(rng, rng.randint(4, 7), extra_edges=2)
        stream_map[f"s{i}"] = synthesize_stream(
            base, 0.3, 0.2, timestamps, rng, all_pairs=True, name=f"s{i}"
        )
    return queries, stream_map


def replay(monitor, streams) -> None:
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    horizon = min(len(stream.operations) for stream in streams.values())
    for t in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[t])


def assert_worker_spans_have_coordinator_ancestors(records) -> int:
    """Every worker-side ``monitor.apply`` span must walk its parent_id
    chain to a coordinator-side span; returns how many were checked."""
    by_id = {record.span_id: record for record in records}
    checked = 0
    for record in records:
        if record.process == "coordinator" or record.name != "monitor.apply":
            continue
        checked += 1
        cursor = record
        while cursor.parent_id is not None:
            parent = by_id.get(cursor.parent_id)
            assert parent is not None, (
                f"orphan parent id {cursor.parent_id} on {record.name} "
                f"in {record.process}"
            )
            cursor = parent
        assert cursor.process == "coordinator", (
            f"{record.name} in {record.process} roots at {cursor.process}, "
            "not the coordinator"
        )
    return checked


# ----------------------------------------------------------------------
# minting and the frame stack
# ----------------------------------------------------------------------
class TestIds:
    def test_ids_are_unique_and_typed(self):
        trace_ids = {trace_mod.new_trace_id() for _ in range(100)}
        span_ids = {trace_mod.new_span_id() for _ in range(100)}
        assert len(trace_ids) == 100 and len(span_ids) == 100
        assert all(t.startswith("t-") for t in trace_ids)
        assert all(s.startswith("s-") for s in span_ids)
        assert not trace_ids & span_ids

    def test_ids_embed_the_pid(self):
        assert f"-{os.getpid():x}-" in trace_mod.new_trace_id()

    def test_process_label_default_and_override(self):
        previous = trace_mod._process_label
        try:
            trace_mod._process_label = None  # the never-labelled default
            assert trace_mod.process_label() == f"pid-{os.getpid()}"
            trace_mod.set_process_label("coordinator")
            assert trace_mod.process_label() == "coordinator"
        finally:
            trace_mod._process_label = previous


class TestNesting:
    def test_nested_spans_share_a_trace(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.spans()
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.span_id != outer.span_id

    def test_sequential_roots_get_distinct_traces(self):
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        first, second = obs.spans()
        assert first.trace_id != second.trace_id

    def test_current_context_tracks_innermost_span(self):
        assert trace_mod.current_context() is None
        with obs.span("outer"):
            outer_ctx = trace_mod.current_context()
            with obs.span("inner"):
                inner_ctx = trace_mod.current_context()
                assert inner_ctx.trace_id == outer_ctx.trace_id
                assert inner_ctx.span_id != outer_ctx.span_id
        assert trace_mod.current_context() is None


# ----------------------------------------------------------------------
# envelopes and attachment
# ----------------------------------------------------------------------
class TestEnvelopes:
    def test_stamp_outside_any_span_is_identity(self):
        command = ("apply", 7, "s0", None)
        assert obs.stamp_envelope(command) is command

    def test_stamp_and_split_round_trip(self):
        command = ("apply", 7, "s0", None)
        with obs.span("driver"):
            envelope = obs.stamp_envelope(command)
            ctx = trace_mod.current_context()
        assert envelope[: len(command)] == command
        base, split_ctx = obs.split_envelope(envelope)
        assert base == command
        assert split_ctx == ctx

    def test_split_unstamped_returns_none_context(self):
        command = ("poll", 3)
        assert obs.split_envelope(command) == (command, None)

    def test_attached_context_parents_root_spans(self):
        remote = TraceContext(trace_id="t-abc-1", span_id="s-abc-2")
        with obs.attached(remote):
            with obs.span("worker.stage"):
                pass
        [record] = obs.spans()
        assert record.trace_id == "t-abc-1"
        assert record.parent_id == "s-abc-2"

    def test_attached_none_forces_fresh_traces(self):
        remote = TraceContext(trace_id="t-abc-1", span_id="s-abc-2")
        with obs.attached(remote):
            with obs.attached(None):  # journal replay inside a live batch
                with obs.span("replayed"):
                    pass
            with obs.span("live"):
                pass
        replayed, live = obs.spans()
        assert replayed.parent_id is None
        assert replayed.trace_id != "t-abc-1"
        assert live.trace_id == "t-abc-1"  # attachment restored


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
class TestChromeExport:
    def _records(self):
        with obs.span("monitor.apply", stream="s0"):
            with obs.span("nnt.batch_update"):
                pass
        return obs.spans()

    def test_structure_and_serializability(self):
        data = obs.to_chrome(self._records())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        json.dumps(data)  # must be plain-JSON serializable
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in meta] == ["process_name"]
        assert {e["name"] for e in complete} == {"monitor.apply", "nnt.batch_update"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0  # microseconds
            assert event["args"]["trace_id"].startswith("t-")

    def test_coordinator_track_is_pid_zero(self):
        from dataclasses import replace

        records = self._records()
        relabeled = [
            replace(record, process=label)
            for record, label in zip(records, ("shard-1", "coordinator"))
        ]
        data = obs.to_chrome(relabeled)
        names = {
            e["pid"]: e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M"
        }
        assert names[0] == "coordinator"

    def test_span_attrs_ride_in_args(self):
        data = obs.to_chrome(self._records())
        apply_event = next(
            e for e in data["traceEvents"] if e.get("name") == "monitor.apply"
        )
        assert apply_event["args"]["stream"] == "s0"

    def test_render_critical_spans_ranks_by_duration(self):
        text = obs.render_critical_spans(self._records(), top=5)
        lines = text.splitlines()
        assert "critical spans" in lines[0]
        assert "monitor.apply" in lines[2]  # longest first (it encloses)
        assert "nnt.batch_update" in text

    def test_render_critical_spans_empty(self):
        text = obs.render_critical_spans([], top=5)
        assert "top 0 critical spans of 0" in text


# ----------------------------------------------------------------------
# cross-process propagation through the real runtime
# ----------------------------------------------------------------------
class TestShardedTraces:
    def test_worker_apply_spans_have_coordinator_ancestors(self):
        from repro.runtime import ShardedMonitor

        queries, streams = small_workload(seed=41)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            replay(sharded, streams)
            records = sharded.trace_spans()
        processes = {record.process for record in records}
        assert processes == {"coordinator", "shard-0", "shard-1"}
        assert assert_worker_spans_have_coordinator_ancestors(records) > 0
        # And the whole collection exports as loadable Chrome JSON.
        json.dumps(obs.to_chrome(records))

    def test_recovered_worker_reattaches_to_fresh_traces(self):
        """Kill a worker mid-replay: the journal replay must open fresh
        traces (roots, no parents), and nothing in the collected set may
        reference a parent id that no longer exists."""
        from repro.runtime import ShardedMonitor

        queries, streams = small_workload(seed=42, timestamps=6)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, stream in streams.items():
                sharded.add_stream(stream_id, stream.initial)
            horizon = min(len(s.operations) for s in streams.values())
            kill_at = horizon // 2
            for t in range(horizon):
                for stream_id, stream in streams.items():
                    sharded.apply(stream_id, stream.operations[t])
                if t == kill_at:
                    victim = sharded.worker_pids()[0]
                    os.kill(victim, signal.SIGKILL)
                    time.sleep(0.05)
            sharded.matches()  # triggers recovery + journal replay
            records = sharded.trace_spans()

        by_id = {record.span_id: record for record in records}
        coordinator_traces = {
            record.trace_id
            for record in records
            if record.process == "coordinator"
        }
        recovered_roots = 0
        for record in records:
            if record.process == "coordinator":
                continue
            # No orphans: every parent id resolves within the collection.
            cursor = record
            while cursor.parent_id is not None:
                parent = by_id.get(cursor.parent_id)
                assert parent is not None, (
                    f"orphan parent id {cursor.parent_id} on {record.name}"
                )
                cursor = parent
            if cursor.parent_id is None and cursor.process != "coordinator":
                # A worker-side root: must be a *fresh* trace, not a
                # stale coordinator trace adopted across the restart.
                if cursor.trace_id not in coordinator_traces:
                    recovered_roots += 1
        assert recovered_roots > 0, "journal replay produced no fresh traces"

    def test_merge_summaries_remains_lossless_with_traced_run(self):
        """Trace propagation must not break the fleet metric merge: the
        sharded stats still carry every worker's labelled instruments."""
        from repro.runtime import ShardedMonitor

        queries, streams = small_workload(seed=43)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            replay(sharded, streams)
            merged = sharded.stats()["merged_obs"]
        assert merged["monitor.apply.seconds"]["count"] > 0
        from repro.obs import render_prometheus

        render_prometheus(merged)  # labelled entries must render cleanly


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------
class TestTraceCli:
    def _write_workload(self, tmp_path):
        from repro.graph.io import write_graph_set, write_stream

        queries, streams = small_workload(seed=44, streams=2, timestamps=3)
        qpath = tmp_path / "queries.txt"
        write_graph_set(list(queries.values()), qpath, names=list(queries))
        spaths = []
        for stream_id, stream in streams.items():
            path = tmp_path / f"{stream_id}.txt"
            write_stream(stream, path)
            spaths.append(str(path))
        return str(qpath), spaths

    def test_chrome_export_via_sharded_replay(self, tmp_path, capsys):
        from repro.cli import main

        qpath, spaths = self._write_workload(tmp_path)
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "--queries", qpath, "--streams", *spaths,
             "--workers", "2", "--format", "chrome", "--out", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["displayTimeUnit"] == "ms"
        tracks = {
            e["args"]["name"] for e in data["traceEvents"] if e["ph"] == "M"
        }
        assert tracks == {"coordinator", "shard-0", "shard-1"}
        assert any(
            e.get("name") == "monitor.apply" and e["pid"] != 0
            for e in data["traceEvents"]
        )

    def test_text_export_in_process(self, tmp_path, capsys):
        from repro.cli import main

        qpath, spaths = self._write_workload(tmp_path)
        assert main(["trace", "--queries", qpath, "--streams", *spaths,
                     "--format", "text", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical spans" in out
        assert "monitor.apply" in out
