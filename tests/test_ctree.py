"""Tests for the closure-tree baseline: closure algebra, pseudo
subgraph isomorphism, and index soundness."""

import random

import pytest
from hypothesis import given, settings

from repro.baselines.ctree import (
    ABSENT,
    ClosureGraph,
    ClosureTree,
    merge_closures,
    pseudo_subgraph_isomorphic,
)
from repro.graph import LabeledGraph
from repro.isomorphism import SubgraphMatcher, is_subgraph_isomorphic

from .conftest import extract_connected_subgraph, graph_strategy, random_labeled_graph


def chain(labels, edge_label="-"):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, edge_label)
    return graph


class TestClosureGraph:
    def test_from_graph_singletons(self):
        closure = ClosureGraph.from_graph(chain(["A", "B"]))
        assert closure.num_vertices == 2
        assert closure.vertex_labels == [frozenset(["A"]), frozenset(["B"])]
        assert closure.edges == {(0, 1): frozenset(["-"])}
        assert closure.size == 1

    def test_neighbors_and_degree(self):
        closure = ClosureGraph.from_graph(chain(["A", "B", "C"]))
        assert closure.degree(1) == 2
        assert {v for v, _ in closure.neighbors(1)} == {0, 2}


class TestMergeClosures:
    def test_identical_graphs_merge_tight(self):
        a = ClosureGraph.from_graph(chain(["A", "B"]))
        b = ClosureGraph.from_graph(chain(["A", "B"]))
        merged = merge_closures(a, b)
        assert merged.size == 2
        assert merged.num_vertices == 2
        assert merged.edges[(0, 1)] == frozenset(["-"])  # no ABSENT: shared edge

    def test_label_union(self):
        a = ClosureGraph.from_graph(chain(["A", "B"]))
        b = ClosureGraph.from_graph(chain(["A", "C"]))
        merged = merge_closures(a, b)
        union = frozenset.union(*merged.vertex_labels)
        assert {"A", "B", "C"} <= set(union)

    def test_absent_marker_on_unshared_edges(self):
        triangle = chain(["A", "A", "A"])
        triangle.add_edge(0, 2, "-")
        path = chain(["A", "A", "A"])
        merged = merge_closures(
            ClosureGraph.from_graph(triangle), ClosureGraph.from_graph(path)
        )
        assert any(ABSENT in labels for labels in merged.edges.values())

    def test_size_difference_pads_vertices(self):
        small = ClosureGraph.from_graph(chain(["A"]))
        big = ClosureGraph.from_graph(chain(["A", "B", "C"]))
        merged = merge_closures(small, big)
        assert merged.num_vertices == 3


class TestPseudoIso:
    def test_exact_member_accepted(self):
        graph = chain(["A", "B", "C"])
        closure = ClosureGraph.from_graph(graph)
        assert pseudo_subgraph_isomorphic(chain(["A", "B"]), closure)
        assert pseudo_subgraph_isomorphic(graph, closure)

    def test_label_mismatch_rejected(self):
        closure = ClosureGraph.from_graph(chain(["A", "B"]))
        assert not pseudo_subgraph_isomorphic(chain(["C", "B"]), closure)

    def test_query_larger_than_closure_rejected(self):
        closure = ClosureGraph.from_graph(chain(["A", "B"]))
        assert not pseudo_subgraph_isomorphic(chain(["A", "B", "C"]), closure)

    def test_edge_label_checked(self):
        closure = ClosureGraph.from_graph(chain(["A", "B"], edge_label="x"))
        assert not pseudo_subgraph_isomorphic(chain(["A", "B"], edge_label="y"), closure)

    def test_degree_refinement_prunes(self):
        # Query needs a degree-3 A hub; closure of a path has none.
        star = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B"), (2, "B"), (3, "B")],
            [(0, 1, "-"), (0, 2, "-"), (0, 3, "-")],
        )
        closure = ClosureGraph.from_graph(chain(["B", "A", "B", "B"]))
        assert not pseudo_subgraph_isomorphic(star, closure)

    @pytest.mark.parametrize("trial", range(8))
    def test_sound_against_merged_closures(self, trial):
        rng = random.Random(6600 + trial)
        members = [random_labeled_graph(rng, rng.randint(4, 7), extra_edges=2) for _ in range(3)]
        closure = ClosureGraph.from_graph(members[0])
        for member in members[1:]:
            closure = merge_closures(closure, ClosureGraph.from_graph(member))
        source = rng.choice(members)
        query = extract_connected_subgraph(rng, source, 3)
        assert pseudo_subgraph_isomorphic(query, closure)


class TestClosureTree:
    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            ClosureTree({}, fanout=1)

    def test_empty_db(self):
        tree = ClosureTree({})
        assert tree.candidates_for(chain(["A", "B"])) == set()
        assert tree.node_count() == 0

    def test_empty_query_matches_all(self, rng):
        graphs = {i: random_labeled_graph(rng, 4, extra_edges=1) for i in range(5)}
        tree = ClosureTree(graphs)
        assert tree.candidates_for(LabeledGraph()) == set(graphs)

    def test_tree_shape(self, rng):
        graphs = {i: random_labeled_graph(rng, 4) for i in range(9)}
        tree = ClosureTree(graphs, fanout=3)
        # 9 leaves + 3 level-1 + 1 root
        assert tree.node_count() == 13

    @pytest.mark.parametrize("trial", range(5))
    def test_no_false_negatives(self, trial):
        rng = random.Random(6700 + trial)
        graphs = {
            i: random_labeled_graph(rng, rng.randint(4, 8), extra_edges=rng.randint(0, 3))
            for i in range(10)
        }
        tree = ClosureTree(graphs, fanout=3)
        source = rng.choice(list(graphs))
        query = extract_connected_subgraph(rng, graphs[source], 3)
        truth = {
            graph_id
            for graph_id, graph in graphs.items()
            if SubgraphMatcher(graph).is_subgraph(query)
        }
        candidates = tree.candidates_for(query)
        assert truth <= candidates
        assert source in candidates

    def test_candidates_subset_of_db(self, rng):
        graphs = {i: random_labeled_graph(rng, 5, extra_edges=2) for i in range(7)}
        tree = ClosureTree(graphs)
        assert tree.candidates_for(chain(["A", "B"])) <= set(graphs)


@settings(max_examples=15, deadline=None)
@given(graph_strategy(min_vertices=3, max_vertices=6), graph_strategy(min_vertices=2, max_vertices=4))
def test_property_ctree_sound(target, query):
    tree = ClosureTree({0: target}, fanout=2)
    if is_subgraph_isomorphic(query, target):
        assert tree.candidates_for(query) == {0}
