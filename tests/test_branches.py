"""Tests for Lemma 4.1 branch compatibility and its relation to NPV."""

import random

import pytest
from hypothesis import given, settings

from repro.graph import LabeledGraph
from repro.isomorphism import is_subgraph_isomorphic
from repro.nnt import (
    BranchFilter,
    branch_compatible,
    branch_profile,
    build_nnt,
    dominates,
    project_graph,
)

from .conftest import extract_connected_subgraph, graph_strategy, random_labeled_graph


def chain(labels, edge_label="-"):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, edge_label)
    return graph


class TestBranchProfile:
    def test_single_edge(self):
        graph = chain(["A", "B"])
        profile = branch_profile(build_nnt(graph, 0, 2), graph.vertex_label)
        assert profile == {(("-", "B"),): 1}

    def test_prefix_closed(self):
        graph = chain(["A", "B", "C"])
        profile = branch_profile(build_nnt(graph, 0, 2), graph.vertex_label)
        assert (("-", "B"),) in profile
        assert (("-", "B"), ("-", "C")) in profile

    def test_multiplicities(self):
        star = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B"), (2, "B")], [(0, 1, "-"), (0, 2, "-")]
        )
        profile = branch_profile(build_nnt(star, 0, 1), star.vertex_label)
        assert profile == {(("-", "B"),): 2}


class TestBranchCompatible:
    def test_root_label_must_match(self):
        g1 = chain(["A", "B"])
        g2 = chain(["C", "B"])
        p1 = branch_profile(build_nnt(g1, 0, 2), g1.vertex_label)
        p2 = branch_profile(build_nnt(g2, 0, 2), g2.vertex_label)
        assert not branch_compatible(p1, p2, "A", "C")

    def test_subset_multiset(self):
        small = {(("-", "B"),): 1}
        big = {(("-", "B"),): 2, (("-", "C"),): 1}
        assert branch_compatible(small, big, "A", "A")
        assert not branch_compatible(big, small, "A", "A")


class TestBranchFilter:
    def test_rejects_edgeless_never(self):
        query = chain(["A", "B"])
        flt = BranchFilter(query, depth_limit=2)
        assert flt.admits(chain(["A", "B", "C"]))
        assert not flt.admits(chain(["C", "C"]))

    @pytest.mark.parametrize("trial", range(8))
    def test_no_false_negatives(self, trial):
        rng = random.Random(8100 + trial)
        target = random_labeled_graph(rng, rng.randint(5, 8), extra_edges=rng.randint(0, 3))
        query = extract_connected_subgraph(rng, target, 3)
        assert BranchFilter(query, depth_limit=3).admits(target)

    @pytest.mark.parametrize("trial", range(8))
    def test_at_least_as_strong_as_npv(self, trial):
        """Branch compatibility implies NPV dominance pair-wise: the
        branch filter's candidate set is a subset of the NPV filter's."""
        rng = random.Random(8200 + trial)
        query = random_labeled_graph(rng, 4, extra_edges=1)
        target = random_labeled_graph(rng, rng.randint(4, 8), extra_edges=rng.randint(0, 4))
        branch_admits = BranchFilter(query, depth_limit=3).admits(target)
        query_npvs = project_graph(query, 3)
        target_vectors = list(project_graph(target, 3).values())
        npv_admits = all(
            any(dominates(tv, qv) for tv in target_vectors) for qv in query_npvs.values()
        )
        if branch_admits:
            assert npv_admits


@settings(max_examples=20, deadline=None)
@given(graph_strategy(min_vertices=2, max_vertices=6))
def test_property_graph_branch_admits_itself(graph):
    assert BranchFilter(graph, depth_limit=2).admits(graph)


@settings(max_examples=15, deadline=None)
@given(graph_strategy(min_vertices=3, max_vertices=6), graph_strategy(min_vertices=2, max_vertices=5))
def test_property_branch_filter_sound(target, query):
    """If the query truly embeds, the branch filter must admit it."""
    if is_subgraph_isomorphic(query, target):
        assert BranchFilter(query, depth_limit=3).admits(target)
