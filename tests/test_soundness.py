"""End-to-end soundness: the paper's hard guarantee is that the filter
never misses a truly joinable pair, at any timestamp, under any update
sequence.  These tests replay randomized streams and check the filter
output against exact subgraph isomorphism at every step, for all three
engines and both baselines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamMonitor
from repro.baselines import GraphGrepStreamFilter
from repro.core.metrics import compare_with_truth
from repro.graph import EdgeChange, LabeledGraph, apply_change
from repro.isomorphism import SubgraphMatcher

from .conftest import extract_connected_subgraph, random_labeled_graph


def random_change(rng: random.Random, mirror: LabeledGraph) -> EdgeChange:
    edges = list(mirror.edges())
    vertices = list(mirror.vertices())
    if edges and rng.random() < 0.4:
        u, v, _ = rng.choice(edges)
        return EdgeChange.delete(u, v)
    if len(vertices) >= 2 and rng.random() < 0.7:
        for _ in range(10):
            u, v = rng.sample(vertices, 2)
            if not mirror.has_edge(u, v):
                return EdgeChange.insert(u, v, rng.choice(["-", "="]))
    new_id = max([v for v in vertices if isinstance(v, int)], default=-1) + 1
    if vertices:
        return EdgeChange.insert(
            rng.choice(vertices), new_id, "-", None, rng.choice("ABC")
        )
    return EdgeChange.insert(new_id, new_id + 1, "-", "A", "B")


def exact_pairs(mirror: LabeledGraph, queries: dict) -> set:
    matcher = SubgraphMatcher(mirror)
    return {(0, qid) for qid, query in queries.items() if matcher.is_subgraph(query)}


@pytest.mark.parametrize("method", ("nl", "dsc", "skyline"))
def test_engine_sound_at_every_timestamp(method):
    rng = random.Random(hash(method) & 0xFFFF)
    source = random_labeled_graph(rng, 8, extra_edges=4)
    queries = {
        f"q{i}": extract_connected_subgraph(rng, source, rng.randint(2, 4))
        for i in range(4)
    }
    monitor = StreamMonitor(queries, method=method)
    monitor.add_stream(0, source)
    mirror = source.copy()
    for step in range(80):
        change = random_change(rng, mirror)
        apply_change(mirror, change)
        monitor.apply(0, change)
        truth = exact_pairs(mirror, queries)
        reported = monitor.matches()
        confusion = compare_with_truth(reported, truth)
        assert confusion.sound, (method, step, truth - reported)


def test_graphgrep_sound_at_every_timestamp():
    rng = random.Random(2718)
    source = random_labeled_graph(rng, 8, extra_edges=4)
    queries = {
        f"q{i}": extract_connected_subgraph(rng, source, 3) for i in range(3)
    }
    flt = GraphGrepStreamFilter(queries)
    mirror = source.copy()
    flt.update_stream(0, mirror)
    for step in range(50):
        change = random_change(rng, mirror)
        apply_change(mirror, change)
        flt.update_stream(0, mirror)
        truth = exact_pairs(mirror, queries)
        assert truth <= flt.candidates(), step


def test_verified_matches_equal_truth_throughout():
    rng = random.Random(31415)
    source = random_labeled_graph(rng, 7, extra_edges=3)
    queries = {
        f"q{i}": extract_connected_subgraph(rng, source, 3) for i in range(3)
    }
    monitor = StreamMonitor(queries, method="dsc")
    monitor.add_stream(0, source)
    mirror = source.copy()
    for step in range(40):
        change = random_change(rng, mirror)
        apply_change(mirror, change)
        monitor.apply(0, change)
        assert monitor.verified_matches() == exact_pairs(mirror, queries), step


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from(["nl", "dsc", "skyline"]))
def test_property_soundness_any_seed(seed, method):
    rng = random.Random(seed)
    source = random_labeled_graph(rng, rng.randint(4, 7), extra_edges=rng.randint(0, 3))
    queries = {"q": extract_connected_subgraph(rng, source, rng.randint(2, 3))}
    monitor = StreamMonitor(queries, method=method)
    monitor.add_stream(0, source)
    mirror = source.copy()
    for _ in range(25):
        change = random_change(rng, mirror)
        apply_change(mirror, change)
        monitor.apply(0, change)
    assert exact_pairs(mirror, queries) <= monitor.matches()
