"""End-to-end tests of the asyncio TCP serving layer.

The async tests drive a real :class:`ReproServer` on a loopback socket
via ``asyncio.run`` inside synchronous test functions.  Correctness is
checked two ways: exact equivalence against a reference
:class:`StreamMonitor` fed the identical per-stream batch sequence, and
zero false negatives against the independent networkx monomorphism
oracle on each stream's final graph.  The SIGTERM drain test spawns the
real ``repro serve --tcp`` CLI as a subprocess.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.datasets.stream_gen import synthesize_stream
from repro.graph import LabeledGraph
from repro.graph.operations import EdgeChange, GraphChangeOperation
from repro.obs import Registry
from repro.serve import (
    DeadLetterQueue,
    ReproServer,
    ServeConfig,
    Session,
    TokenBucket,
    replay_dead_letters_async,
)
from repro.serve.protocol import Commit, change_to_dict
from repro.serve.server import _WorkItem
from repro.serve.session import apply_batch_validated

from .conftest import random_labeled_graph
from .test_vf2 import nx_subgraph_iso

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def clean_obs():
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


# -- async client helpers --------------------------------------------------


async def connect(port: int):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    hello = json.loads(await reader.readline())
    assert hello["notice"] == "hello"
    return reader, writer, hello


async def send_cmd(reader, writer, doc: dict, notices: list | None = None) -> dict:
    writer.write((json.dumps(doc) + "\n").encode())
    await writer.drain()
    while True:
        line = await reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        reply = json.loads(line)
        if "notice" in reply:
            if notices is not None:
                notices.append(reply)
            continue
        return reply


def small_queries(rng: random.Random, count: int = 2) -> dict:
    return {f"q{i}": random_labeled_graph(rng, 3, extra_edges=1) for i in range(count)}


def edge_query() -> LabeledGraph:
    query = LabeledGraph()
    query.add_vertex(0, "A")
    query.add_vertex(1, "B")
    query.add_edge(0, 1, "x")
    return query


def ins(stream, u, v) -> dict:
    return {
        "cmd": "ins",
        "stream": stream,
        "u": u,
        "v": v,
        "edge_label": "x",
        "u_label": "A",
        "v_label": "B",
    }


# -- concurrent clients vs reference monitor + oracle ----------------------


def _build_workload(rng: random.Random, stream_id: int):
    """One client's batch sequence: the initial graph as an insert batch
    (streams are created empty over the wire) plus the synthetic stream's
    change operations.  Returns (batches, final_graph)."""
    base = random_labeled_graph(rng, 6, extra_edges=2)
    stream = synthesize_stream(
        base, 0.3, 0.25, 4, rng, all_pairs=True, name=str(stream_id)
    )
    initial_batch = GraphChangeOperation(
        [
            EdgeChange.insert(
                u,
                v,
                label,
                stream.initial.vertex_label(u),
                stream.initial.vertex_label(v),
            )
            for u, v, label in stream.initial.edges()
        ]
    )
    batches = [initial_batch] + list(stream.operations)
    return batches, stream.graph_at(len(stream) - 1)


class TestConcurrentClients:
    def test_concurrent_clients_match_reference_and_oracle(self):
        rng = random.Random(20090415)
        queries = small_queries(rng, count=3)
        workloads = {i: _build_workload(rng, i) for i in range(3)}

        async def drive(port: int, stream_id: int, batches, commits: list):
            reader, writer, _ = await connect(port)
            reply = await send_cmd(
                reader, writer, {"cmd": "stream", "stream": stream_id}
            )
            assert reply["ok"] and reply["stream"] == stream_id
            for batch in batches:
                reply = await send_cmd(
                    reader,
                    writer,
                    {
                        "cmd": "batch",
                        "stream": stream_id,
                        "changes": [change_to_dict(c) for c in batch],
                    },
                )
                assert reply["ok"], reply
                reply = await send_cmd(reader, writer, {"cmd": "commit"})
                assert reply["ok"], reply
                commits.append(reply)
                await asyncio.sleep(0)  # let the other clients interleave
            await send_cmd(reader, writer, {"cmd": "quit"})
            writer.close()

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor)
            await server.start()
            commits: dict[int, list] = {i: [] for i in workloads}
            await asyncio.gather(
                *(
                    drive(server.port, i, batches, commits[i])
                    for i, (batches, _) in workloads.items()
                )
            )
            reader, writer, _ = await connect(server.port)
            matches_reply = await send_cmd(reader, writer, {"cmd": "matches"})
            poll_reply = await send_cmd(reader, writer, {"cmd": "poll"})
            await send_cmd(reader, writer, {"cmd": "quit"})
            await server.drain()
            return commits, matches_reply, poll_reply

        commits, matches_reply, poll_reply = asyncio.run(scenario())

        # Reference: the identical batch sequence through a library monitor.
        reference = StreamMonitor(queries, method="dsc")
        for stream_id, (batches, _) in workloads.items():
            reference.add_stream(stream_id, LabeledGraph())
            for batch in batches:
                reference.apply(stream_id, batch)
        expected = reference.matches()

        served = {tuple(pair) for pair in matches_reply["matches"]}
        assert served == expected

        # Zero false negatives against the independent networkx oracle.
        for stream_id, (_, final_graph) in workloads.items():
            for query_id, query in queries.items():
                if nx_subgraph_iso(query, final_graph):
                    assert (stream_id, query_id) in served

        # A fresh session's first poll reports the whole current match
        # set as appeared events, with integer stream ids kept typed.
        polled = {(e["stream"], e["query"]) for e in poll_reply["events"]}
        assert polled == expected
        assert all(e["kind"] == "appeared" for e in poll_reply["events"])
        assert all(isinstance(e["stream"], int) for e in poll_reply["events"])

        # Every commit minted a trace id and carried it in the reply.
        for replies in commits.values():
            assert all(reply.get("trace") for reply in replies)


# -- admission: rate limiting, breaker, queue policies ---------------------


class TestAdmission:
    def test_rate_limited_session_gets_retry_after(self):
        rng = random.Random(7)
        queries = small_queries(rng)

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor, ServeConfig(rate=5.0, burst=1.0))
            await server.start()
            reader, writer, _ = await connect(server.port)
            first = await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"})
            second = await send_cmd(reader, writer, ins("s", 1, 2))
            control = await send_cmd(reader, writer, {"cmd": "matches"})
            await asyncio.sleep(0.5)  # tokens accrue at 5/s
            third = await send_cmd(reader, writer, ins("s", 1, 2))
            await server.drain()
            return first, second, control, third

        first, second, control, third = asyncio.run(scenario())
        assert first["ok"]
        assert second["ok"] is False
        assert second["code"] == "rate_limited"
        assert second["retry_after"] > 0
        assert control["ok"]  # control plane bypasses admission
        assert third["ok"]

    def test_breaker_cycles_open_half_open_closed(self):
        rng = random.Random(8)
        queries = small_queries(rng)
        load = {"value": 0.0}

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(
                monitor,
                ServeConfig(
                    breaker_threshold=5.0,
                    breaker_cooldown=0.05,
                    breaker_trip_after=2,
                ),
                load_probe=lambda: load["value"],
            )
            await server.start()
            reader, writer, _ = await connect(server.port)
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))[
                "ok"
            ]
            states = []

            load["value"] = 10.0
            hot1 = await send_cmd(reader, writer, ins("s", 1, 2))
            hot2 = await send_cmd(reader, writer, ins("s", 2, 3))
            states.append(server.breaker.state)
            rejected = await send_cmd(reader, writer, ins("s", 3, 4))

            # Cooldown with load still hot: the half-open trial is
            # admitted, and its own load sample re-opens the breaker.
            await asyncio.sleep(0.08)
            trial = await send_cmd(reader, writer, ins("s", 4, 5))
            reopened = await send_cmd(reader, writer, ins("s", 5, 6))
            states.append(server.breaker.state)

            # Load recovers: cooldown, trial admitted, next sample closes.
            load["value"] = 0.0
            await asyncio.sleep(0.08)
            recovery = await send_cmd(reader, writer, ins("s", 6, 7))
            states.append(server.breaker.state)
            closing = await send_cmd(reader, writer, ins("s", 7, 8))
            states.append(server.breaker.state)
            trips = server.breaker.trips
            await server.drain()
            return hot1, hot2, rejected, trial, reopened, recovery, closing, states, trips

        hot1, hot2, rejected, trial, reopened, recovery, closing, states, trips = (
            asyncio.run(scenario())
        )
        assert hot1["ok"]  # first hot sample is still under trip_after
        # The sample that trips the breaker is itself refused: admission
        # observes load *before* asking the breaker for permission.
        assert hot2["ok"] is False and hot2["code"] == "overloaded"
        assert states[0] == "open"
        assert rejected["ok"] is False
        assert rejected["code"] == "overloaded"
        assert rejected["error"] == "circuit breaker open"
        assert rejected["retry_after"] > 0
        assert trial["ok"]  # half-open admits trial traffic
        assert reopened["ok"] is False and states[1] == "open"
        assert recovery["ok"] and states[2] == "half_open"
        assert closing["ok"] and states[3] == "closed"
        assert trips == 2

    def test_full_queue_reject_policy_refuses_newcomer(self):
        rng = random.Random(9)
        server = ReproServer(
            StreamMonitor(small_queries(rng)),
            ServeConfig(admission_capacity=1, admission_policy="reject"),
        )
        server._data_depth = 1  # one data command already queued
        rejection = server._admit(
            Session(1), TokenBucket(0.0), Commit(verb="commit")
        )
        assert rejection["code"] == "overloaded"
        assert rejection["error"] == "admission queue full"
        assert rejection["retry_after"] >= 0.05
        assert server.counters["rejected_queue"] == 1

    def test_full_queue_shed_policy_evicts_oldest(self):
        rng = random.Random(10)

        async def scenario():
            server = ReproServer(
                StreamMonitor(small_queries(rng)),
                ServeConfig(admission_capacity=1, admission_policy="shed"),
            )
            loop = asyncio.get_running_loop()
            victim = _WorkItem(
                Session(1), Commit(verb="commit"), loop.create_future(), True
            )
            server._data_depth = 1
            server._sheddable.append(victim)
            rejection = server._admit(
                Session(2), TokenBucket(0.0), Commit(verb="commit")
            )
            return server, victim, rejection

        async def run():
            server, victim, rejection = await scenario()
            assert rejection is None  # the newcomer is admitted
            assert victim.shed
            shed_reply = victim.future.result()
            assert shed_reply["code"] == "shed"
            assert shed_reply["retry_after"] >= 0.05
            assert server.counters["shed"] == 1
            assert server.counters["admitted"] == 1

        asyncio.run(run())


# -- dead-lettering and replay ---------------------------------------------


class TestDeadLettering:
    def test_poison_batch_is_journaled_and_replayable(self, tmp_path):
        queries = {"q": edge_query()}
        dlq = DeadLetterQueue(tmp_path)

        async def poison_phase():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor, dlq=dlq)
            await server.start()
            reader, writer, _ = await connect(server.port)
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))[
                "ok"
            ]
            assert (await send_cmd(reader, writer, ins("s", 1, 2)))["ok"]
            good = await send_cmd(reader, writer, {"cmd": "commit"})
            # The same insert again is a duplicate edge: poison at commit.
            assert (await send_cmd(reader, writer, ins("s", 1, 2)))["ok"]
            bad = await send_cmd(reader, writer, {"cmd": "commit"})
            # Poison is cleared from the stage, so the session recovers.
            after = await send_cmd(reader, writer, {"cmd": "commit"})
            await server.drain()
            return good, bad, after

        good, bad, after = asyncio.run(poison_phase())
        assert good["ok"] and good["applied"] == 1
        assert bad["ok"] is False
        assert bad["errors"][0]["dlq_id"] == 1
        assert "GraphError" in bad["errors"][0]["error"]
        assert after["ok"] and after["applied"] == 0

        entry = dlq.get(1)
        assert entry is not None and not entry.replayed
        assert entry.stream == "s"
        assert entry.trace_id  # journaled with the commit's trace id
        assert entry.changes == [change_to_dict(EdgeChange.insert(1, 2, "x", "A", "B"))]

        async def replay_phase():
            monitor = StreamMonitor(queries, method="dsc")  # fresh server
            server = ReproServer(monitor, dlq=dlq)
            await server.start()
            replayed = await replay_dead_letters_async(dlq, "127.0.0.1", server.port)
            matches = monitor.matches()
            await server.drain()
            return replayed, matches

        replayed, matches = asyncio.run(replay_phase())
        assert replayed == [1]
        assert matches == {("s", "q")}  # the dead batch applied cleanly

        # The replay marker survives the journal round-trip.
        assert DeadLetterQueue(tmp_path).get(1).replayed

    def test_sharded_poison_is_dead_lettered_and_worker_stays_healthy(
        self, tmp_path
    ):
        """Against the sharded runtime ``apply`` is asynchronous, so a
        poison batch that reached a worker would crash it *after* the
        commit reply (and journal replay would re-crash it forever).
        The bridge's shadow validation must refuse the batch up front:
        a structured dead-letter reply, never ``code: internal``, and
        the stream keeps serving afterwards."""
        from repro.runtime import ShardedMonitor

        queries = {"q": edge_query()}
        dlq = DeadLetterQueue(tmp_path)

        async def scenario(monitor):
            server = ReproServer(monitor, dlq=dlq)
            await server.start()
            reader, writer, _ = await connect(server.port)
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))[
                "ok"
            ]
            assert (await send_cmd(reader, writer, ins("s", 1, 2)))["ok"]
            good = await send_cmd(reader, writer, {"cmd": "commit"})
            # Duplicate edge: poison, but the worker must never see it.
            assert (await send_cmd(reader, writer, ins("s", 1, 2)))["ok"]
            bad = await send_cmd(reader, writer, {"cmd": "commit"})
            # The stream still accepts good batches — the worker is alive.
            assert (await send_cmd(reader, writer, ins("s", 3, 4)))["ok"]
            after = await send_cmd(reader, writer, {"cmd": "commit"})
            matched = await send_cmd(reader, writer, {"cmd": "matches"})
            await server.drain()
            return good, bad, after, matched

        monitor = ShardedMonitor(queries, method="dsc", num_workers=2)
        try:
            good, bad, after, matched = asyncio.run(scenario(monitor))
        finally:
            monitor.close()

        assert good["ok"] and good["applied"] == 1
        assert bad["ok"] is False and "code" not in bad
        assert bad["errors"][0]["dlq_id"] == 1
        assert "GraphError" in bad["errors"][0]["error"]
        assert after["ok"] and after["applied"] == 1
        assert matched["matches"] == [["s", "q"]]

        entry = dlq.get(1)
        assert entry is not None and entry.stream == "s"
        assert entry.changes == [change_to_dict(EdgeChange.insert(1, 2, "x", "A", "B"))]

    def test_cli_dlq_list_and_show(self, tmp_path, capsys):
        from repro.cli import main

        dlq = DeadLetterQueue(tmp_path)
        dlq.record(
            session=1,
            stream="s0",
            changes=[{"op": "ins", "u": 1, "v": 2, "edge_label": "x"}],
            error="GraphError: duplicate edge",
        )

        assert main(["dlq", "list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pending" in out and "stream=s0" in out and "total: 1" in out

        assert main(["dlq", "show", "--dir", str(tmp_path), "--id", "1"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["dlq_id"] == 1 and doc["error"] == "GraphError: duplicate edge"

        assert main(["dlq", "show", "--dir", str(tmp_path)]) == 2
        assert main(["dlq", "show", "--dir", str(tmp_path), "--id", "9"]) == 2


# -- shadow validation ------------------------------------------------------


class TestShadowValidation:
    """The bridge's all-or-nothing batch validator (session module)."""

    def _graph(self) -> LabeledGraph:
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        graph.add_vertex(2, "B")
        graph.add_edge(1, 2, "x")
        return graph

    def test_clean_batch_applies(self):
        graph = self._graph()
        apply_batch_validated(
            graph,
            GraphChangeOperation(
                [EdgeChange.delete(1, 2), EdgeChange.insert(1, 3, "y", "A", "C")]
            ),
        )
        assert graph.has_edge(1, 3) and not graph.has_edge(1, 2)
        assert not graph.has_vertex(2)  # isolated by the delete, dropped

    @pytest.mark.parametrize(
        "poison",
        [
            EdgeChange.insert(2, 5, "z", "B", "E"),  # duplicates the prefix's
            EdgeChange.delete(1, 9),  # missing edge
            EdgeChange.insert(1, 9, "x"),  # new vertex, no label
        ],
        ids=["duplicate-insert", "missing-delete", "unlabeled-vertex"],
    )
    def test_poison_rolls_back_to_identical_graph(self, poison):
        graph = self._graph()
        pristine = graph.copy()
        # A prefix of valid changes applies before the poison hits; the
        # rollback must undo those too, not just the failing change.
        batch = GraphChangeOperation(
            [
                EdgeChange.delete(1, 2),
                EdgeChange.insert(2, 5, "z", "B", "E"),
                EdgeChange.insert(1, 4, "y", "A", "D"),
                poison,
            ]
        )
        with pytest.raises((Exception,)) as excinfo:
            apply_batch_validated(graph, batch)
        assert excinfo.type.__name__ in ("GraphError", "ValueError", "KeyError")
        assert graph == pristine

    def test_partially_applied_insert_rolls_back(self):
        # 7 gets created, then the unlabeled endpoint 8 aborts the
        # change mid-way: the created vertex must not survive.
        graph = self._graph()
        pristine = graph.copy()
        with pytest.raises(Exception):
            apply_batch_validated(
                graph,
                GraphChangeOperation([EdgeChange.insert(7, 8, "x", "G", None)]),
            )
        assert graph == pristine


# -- draining ---------------------------------------------------------------


class TestDraining:
    def test_drain_flushes_every_acked_batch(self):
        rng = random.Random(11)
        queries = small_queries(rng)

        async def scenario():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor)
            await server.start()
            reader, writer, _ = await connect(server.port)
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))[
                "ok"
            ]
            notices: list = []
            acked: list[int] = []
            saw_draining_reject = False
            for k in range(100):
                if k == 10:
                    server.request_drain()
                try:
                    staged = await send_cmd(
                        reader, writer, ins("s", 1000 + k, 2000 + k), notices
                    )
                    if staged.get("code") == "draining":
                        saw_draining_reject = True
                        break
                    committed = await send_cmd(
                        reader, writer, {"cmd": "commit"}, notices
                    )
                    if committed.get("code") == "draining":
                        saw_draining_reject = True
                        break
                except (ConnectionError, OSError):
                    break
                if staged["ok"] and committed["ok"]:
                    acked.append(k)
            await server.lifecycle.wait_stopped()
            return monitor, server, acked, notices, saw_draining_reject

        monitor, server, acked, notices, rejected = asyncio.run(scenario())
        assert acked  # some commits were acked before the drain
        assert rejected or notices  # the client was told about the drain
        assert any(n.get("notice") == "draining" for n in notices)
        # Every acked batch survived the drain: its edge is in the graph.
        graph = monitor.graph("s")
        for k in acked:
            assert graph.has_edge(1000 + k, 2000 + k)
        assert server.bridge.accepted_batches >= len(acked)
        assert server.lifecycle.stopped

    def test_sigterm_drains_checkpoint_and_exits_cleanly(self, tmp_path):
        from repro.graph.io import write_graph_set

        rng = random.Random(12)
        queries = small_queries(rng)
        qpath = tmp_path / "queries.txt"
        write_graph_set(list(queries.values()), qpath, names=list(queries))
        ckpt = tmp_path / "ckpt"

        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--queries",
                str(qpath),
                "--tcp",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--checkpoint-dir",
                str(ckpt),
                "--dlq-dir",
                str(tmp_path / "dlq"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        try:
            listening = json.loads(proc.stdout.readline())
            assert listening["notice"] == "listening"
            port = listening["port"]

            with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                sock.settimeout(30)
                stream = sock.makefile("rw", encoding="utf-8", newline="\n")
                assert json.loads(stream.readline())["notice"] == "hello"

                def roundtrip(doc: dict) -> dict:
                    stream.write(json.dumps(doc) + "\n")
                    stream.flush()
                    while True:
                        reply = json.loads(stream.readline())
                        if "notice" not in reply:
                            return reply

                assert roundtrip({"cmd": "stream", "stream": "s"})["ok"]
                assert roundtrip(ins("s", 1, 2))["ok"]
                committed = roundtrip({"cmd": "commit"})
                assert committed["ok"] and committed["applied"] == 1

                os.kill(proc.pid, signal.SIGTERM)

                # The drain broadcast reaches connected clients before
                # the server closes the socket.
                drained = None
                while True:
                    line = stream.readline()
                    if not line:
                        break
                    doc = json.loads(line)
                    if doc.get("notice") == "draining":
                        drained = doc
                        break
                assert drained is not None
                assert drained["accepted_batches"] >= 1

            assert proc.wait(timeout=60) == 0
            # The drain checkpointed every shard before exiting.
            assert (ckpt / "shard_0" / "LATEST").exists()
            assert (ckpt / "shard_1" / "LATEST").exists()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)


# -- live query churn over the wire ----------------------------------------


class TestQueryChurnOverTcp:
    def test_addq_delq_replies_carry_trace_ids(self):
        """Every churn reply is traceable: addq/delq replies carry the
        span's trace id, and the registered query answers immediately
        against the stream state that existed before it arrived."""
        queries = {"q": edge_query()}

        async def run():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor)
            await server.start()
            reader, writer, _ = await connect(server.port)
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))[
                "ok"
            ]
            assert (await send_cmd(reader, writer, ins("s", 1, 2)))["ok"]
            assert (await send_cmd(reader, writer, {"cmd": "commit"}))["ok"]
            added = await send_cmd(
                reader,
                writer,
                {
                    "cmd": "addq",
                    "query": "late",
                    "vertices": [[0, "A"], [1, "B"]],
                    "edges": [[0, 1, "x"]],
                },
            )
            flagged = await send_cmd(reader, writer, {"cmd": "matches"})
            dropped = await send_cmd(reader, writer, {"cmd": "delq", "query": "late"})
            after = await send_cmd(reader, writer, {"cmd": "matches"})
            await server.drain()
            return added, flagged, dropped, after

        added, flagged, dropped, after = asyncio.run(run())
        assert added["ok"] and added["queries"] == 2
        assert added["trace"], "addq reply is missing its trace id"
        # The late query sees the pre-registration stream state at once.
        assert sorted(map(tuple, flagged["matches"])) == [("s", "late"), ("s", "q")]
        assert dropped["ok"] and dropped["queries"] == 1
        assert dropped["trace"], "delq reply is missing its trace id"
        assert sorted(map(tuple, after["matches"])) == [("s", "q")]

    def test_poison_addq_dead_letters_and_session_survives(self, tmp_path):
        """A malformed registration — bad inline pattern or a missing
        graph-set file — must dead-letter with kind='query' and a trace
        id, not crash the worker; the session keeps serving."""
        queries = {"q": edge_query()}
        dlq = DeadLetterQueue(tmp_path)

        async def run():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor, dlq=dlq)
            await server.start()
            reader, writer, _ = await connect(server.port)
            bad_inline = await send_cmd(
                reader,
                writer,
                {
                    "cmd": "addq",
                    "query": "broken",
                    "vertices": [[0, "A"]],
                    "edges": [[0, 7, "x"]],  # edge endpoint never declared
                },
            )
            bad_file = await send_cmd(
                reader,
                writer,
                {
                    "cmd": "addq",
                    "query": "ghost",
                    "graph_file": str(tmp_path / "no_such_set.txt"),
                },
            )
            # The session is still alive and fully functional.
            assert (await send_cmd(reader, writer, {"cmd": "stream", "stream": "s"}))[
                "ok"
            ]
            assert (await send_cmd(reader, writer, ins("s", 1, 2)))["ok"]
            committed = await send_cmd(reader, writer, {"cmd": "commit"})
            flagged = await send_cmd(reader, writer, {"cmd": "matches"})
            await server.drain()
            return bad_inline, bad_file, committed, flagged

        bad_inline, bad_file, committed, flagged = asyncio.run(run())
        for bad in (bad_inline, bad_file):
            assert bad["ok"] is False
            assert "code" not in bad  # poison, not an internal error
            assert bad["trace"]
        assert bad_inline["dlq_id"] == 1 and bad_file["dlq_id"] == 2
        assert committed["ok"] and committed["applied"] == 1
        assert sorted(map(tuple, flagged["matches"])) == [("s", "q")]

        entry = dlq.get(1)
        assert entry is not None and entry.kind == "query"
        assert entry.trace_id
        assert entry.changes == [{"cmd": "addq", "query": "broken"}]

    def test_unknown_delq_is_refused_without_dead_letter(self, tmp_path):
        """delq of an id that was never registered is a refusal, not a
        poison batch: nothing to replay, so nothing is journaled."""
        queries = {"q": edge_query()}
        dlq = DeadLetterQueue(tmp_path)

        async def run():
            monitor = StreamMonitor(queries, method="dsc")
            server = ReproServer(monitor, dlq=dlq)
            await server.start()
            reader, writer, _ = await connect(server.port)
            refused = await send_cmd(
                reader, writer, {"cmd": "delq", "query": "never-was"}
            )
            still = await send_cmd(reader, writer, {"cmd": "delq", "query": "q"})
            await server.drain()
            return refused, still

        refused, still = asyncio.run(run())
        assert refused["ok"] is False and "dlq_id" not in refused
        assert refused["trace"]
        assert still["ok"] and still["queries"] == 0
        assert dlq.get(1) is None  # nothing was journaled
