"""The observability layer: instruments, spans, merging, exposition.

Pins the contracts the rest of the PR leans on: ``le`` bucket edge
semantics, lossless merge (associative, identity ``{}``), span
nesting/ring bounds, the disabled fast path mutating nothing, and the
Prometheus text output actually parsing as Prometheus text (checked
with a small hand-written parser — the real client is not a
dependency).
"""

from __future__ import annotations

import json
import pickle
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    merge_summaries,
    metric_name,
    render_json,
    render_prometheus,
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test gets an enabled, empty registry and span buffer; the
    session's global registry and switch are restored afterwards."""
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.summary() == {"kind": "counter", "help": "", "value": 3.5}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_disabled_is_noop(self):
        counter = Counter("c")
        counter.inc(3)
        obs.disable()
        counter.inc(100)
        assert counter.value == 3


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_disabled_is_noop(self):
        gauge = Gauge("g")
        obs.disable()
        gauge.set(42)
        assert gauge.value == 0


class TestHistogram:
    def test_value_on_edge_lands_in_that_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)  # exactly on the second bound -> le="2" bucket
        assert hist.counts == [0, 1, 0, 0]

    def test_below_first_edge(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        assert hist.counts == [1, 0, 0]

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 1]

    def test_sum_and_count(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.25)
        hist.observe(3.0)
        assert hist.count == 2
        assert hist.sum == pytest.approx(3.25)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_disabled_is_noop(self):
        hist = Histogram("h", buckets=(1.0,))
        obs.disable()
        hist.observe(0.5)
        assert hist.count == 0 and hist.sum == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = Registry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_histogram_bounds_mismatch_raises(self):
        registry = Registry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = Registry()
        registry.counter("c").inc(5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.reset()
        assert registry.counter("c").value == 0
        hist = registry.histogram("h", buckets=(1.0,))
        assert hist.counts == [0, 0] and hist.count == 0
        assert registry.names() == ["c", "h"]

    def test_summary_is_sorted_and_plain(self):
        registry = Registry()
        registry.gauge("b").set(2)
        registry.counter("a").inc()
        summary = registry.summary()
        assert list(summary) == ["a", "b"]
        assert json.loads(json.dumps(summary)) == summary

    def test_instruments_pickle_as_registry_references(self):
        """Unpickling an instrument re-attaches to the process registry
        (fresh values) — what checkpoint restore needs."""
        local = obs.counter("pickled.counter", help="x")
        local.inc(7)
        clone = pickle.loads(pickle.dumps(local))
        assert clone is obs.counter("pickled.counter")
        hist = obs.histogram("pickled.hist", buckets=(1.0, 2.0))
        clone = pickle.loads(pickle.dumps(hist))
        assert clone is obs.histogram("pickled.hist", buckets=(1.0, 2.0))


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def _registry_with(counter=0, gauge=0, observations=()):
    registry = Registry()
    registry.counter("c", help="c help").inc(counter)
    registry.gauge("g").inc(gauge)
    hist = registry.histogram("h", buckets=(1.0, 2.0))
    for value in observations:
        hist.observe(value)
    return registry


class TestMergeSummaries:
    def test_counters_and_gauges_sum(self):
        a = _registry_with(counter=2, gauge=1).summary()
        b = _registry_with(counter=3, gauge=4).summary()
        merged = merge_summaries([a, b])
        assert merged["c"]["value"] == 5
        assert merged["g"]["value"] == 5

    def test_histograms_add_elementwise(self):
        a = _registry_with(observations=[0.5, 1.5]).summary()
        b = _registry_with(observations=[1.5, 5.0]).summary()
        merged = merge_summaries([a, b])
        assert merged["h"]["counts"] == [1, 2, 1]
        assert merged["h"]["count"] == 4
        assert merged["h"]["sum"] == pytest.approx(8.5)

    def test_identity_is_empty_dict(self):
        summary = _registry_with(counter=2, observations=[0.5]).summary()
        assert merge_summaries([{}, summary]) == merge_summaries([summary, {}])
        assert merge_summaries([summary, {}]) == merge_summaries([summary])

    def test_merge_does_not_mutate_inputs(self):
        a = _registry_with(observations=[0.5]).summary()
        b = _registry_with(observations=[1.5]).summary()
        before = json.dumps([a, b], sort_keys=True)
        merge_summaries([a, b])
        assert json.dumps([a, b], sort_keys=True) == before

    def test_kind_mismatch_raises(self):
        with pytest.raises(ValueError):
            merge_summaries(
                [
                    {"x": {"kind": "counter", "help": "", "value": 1}},
                    {"x": {"kind": "gauge", "help": "", "value": 1}},
                ]
            )

    def test_bounds_mismatch_raises(self):
        histogram_a = Registry().histogram("h", buckets=(1.0,))
        histogram_b = Registry().histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            merge_summaries(
                [{"h": histogram_a.summary()}, {"h": histogram_b.summary()}]
            )

    @given(
        counts=st.lists(
            st.tuples(
                st.integers(0, 100),
                st.integers(-50, 50),
                st.lists(st.floats(0, 10, allow_nan=False), max_size=5),
            ),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_associative(self, counts):
        was_enabled = obs.enabled()
        obs.enable()
        try:
            a, b, c = (
                _registry_with(counter=x, gauge=y, observations=z).summary()
                for x, y, z in counts
            )
        finally:
            if not was_enabled:
                obs.disable()
        left = merge_summaries([merge_summaries([a, b]), c])
        right = merge_summaries([a, merge_summaries([b, c])])
        # Associative up to float rounding in the accumulated sums.
        assert left.keys() == right.keys()
        for name in left:
            entry_l, entry_r = left[name], right[name]
            assert entry_l.keys() == entry_r.keys()
            for field in entry_l:
                if field in ("sum", "value"):
                    assert entry_l[field] == pytest.approx(entry_r[field])
                else:
                    assert entry_l[field] == entry_r[field]


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_records_duration_and_attrs(self):
        with obs.span("stage.outer", stream="s0") as live:
            pass
        assert live.duration >= 0.0
        [record] = obs.spans()
        assert record.name == "stage.outer"
        assert record.attrs == {"stream": "s0"}
        assert record.parent is None and record.depth == 0
        assert not record.error

    def test_nesting_tracks_parent_and_depth(self):
        with obs.span("outer"):
            assert obs.span_depth() == 1
            with obs.span("inner"):
                assert obs.span_depth() == 2
        inner, outer = obs.spans()
        assert (inner.name, inner.parent, inner.depth) == ("inner", "outer", 1)
        assert (outer.name, outer.parent, outer.depth) == ("outer", None, 0)
        assert obs.span_depth() == 0

    def test_error_flag_set_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        [record] = obs.spans()
        assert record.error
        assert obs.span_depth() == 0  # stack unwound cleanly

    def test_feeds_latency_histogram(self):
        with obs.span("stage.timed"):
            pass
        hist = obs.get_registry().get("stage.timed.seconds")
        assert hist is not None and hist.count == 1

    def test_ring_buffer_is_bounded(self):
        obs.set_span_capacity(4)
        try:
            for index in range(10):
                with obs.span(f"s{index}"):
                    pass
            names = [record.name for record in obs.spans()]
            assert names == ["s6", "s7", "s8", "s9"]
        finally:
            obs.set_span_capacity(obs.DEFAULT_SPAN_CAPACITY)

    def test_set_span_capacity_rejects_non_positive(self):
        with pytest.raises(ValueError):
            obs.set_span_capacity(0)

    def test_iter_spans_filters_by_name(self):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        with obs.span("a"):
            pass
        assert len(list(obs.iter_spans("a"))) == 2
        assert len(list(obs.iter_spans())) == 3

    def test_disabled_records_nothing(self):
        obs.disable()
        with obs.span("ghost", key="value"):
            pass
        assert obs.spans() == []
        assert obs.get_registry().get("ghost.seconds") is None

    def test_disabled_span_is_shared_singleton(self):
        obs.disable()
        assert obs.span("x") is obs.span("y")


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
def parse_prometheus_text(text: str) -> dict:
    """Tiny exposition-format parser: returns {metric: {labels-str: value}}
    and validates the structural rules the format imposes (TYPE before
    samples, counters end in _total, cumulative buckets non-decreasing,
    +Inf bucket equals _count)."""
    types: dict[str, str] = {}
    samples: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, metric, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            assert metric not in types, f"duplicate TYPE for {metric}"
            types[metric] = kind
            continue
        assert not line.startswith("#"), f"unknown comment line: {line}"
        name_part, value_part = line.rsplit(" ", 1)
        if "{" in name_part:
            name, labels = name_part.split("{", 1)
            labels = "{" + labels
        else:
            name, labels = name_part, ""
        value = float(value_part)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        assert base in types, f"sample {name} has no TYPE header"
        if types[base] == "counter":
            assert base.endswith("_total"), f"counter {base} lacks _total"
        samples.setdefault(name, {})[labels] = value
    for metric, kind in types.items():
        if kind != "histogram":
            continue
        # Bucket series group by their non-le labels (a labeled and an
        # unlabeled series of the same metric are distinct histograms).
        buckets = samples[f"{metric}_bucket"]
        cumulative: dict[str, list[float]] = {}
        inf_by_series: dict[str, float] = {}
        for labels, value in buckets.items():  # insertion order = render order
            assert 'le="' in labels, f"{metric}_bucket sample without le: {labels}"
            series = re.sub(r',?le="[^"]*"', "", labels)
            if series == "{}":
                series = ""
            run = cumulative.setdefault(series, [])
            assert not run or run[-1] <= value, (
                f"{metric}{labels} buckets not cumulative"
            )
            run.append(value)
            if 'le="+Inf"' in labels:
                inf_by_series[series] = value
        counts = samples[f"{metric}_count"]
        assert set(inf_by_series) == set(counts), f"{metric} series mismatch"
        for series, inf_value in inf_by_series.items():
            assert inf_value == counts[series], f"{metric}{series} +Inf != _count"
    return samples


class TestExposition:
    def test_metric_name_sanitizes(self):
        assert metric_name("nnt.batch_update.seconds") == (
            "repro_nnt_batch_update_seconds"
        )
        assert metric_name("0weird-name", prefix="") == "_weird_name"

    def test_counter_gets_total_suffix(self):
        obs.counter("events", help="all events").inc(3)
        text = render_prometheus(obs.get_registry().summary())
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total 3" in text
        assert "# HELP repro_events_total all events" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        hist = obs.histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            hist.observe(value)
        text = render_prometheus(obs.get_registry().summary())
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_empty_summary_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_output_parses_as_prometheus_text(self):
        obs.counter("polls", help="candidate reads").inc(5)
        obs.gauge("depth").set(2)
        hist = obs.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 3.0):
            hist.observe(value)
        text = render_prometheus(obs.get_registry().summary())
        samples = parse_prometheus_text(text)
        assert samples["repro_polls_total"][""] == 5
        assert samples["repro_depth"][""] == 2
        assert samples["repro_lat_count"][""] == 3

    def test_render_json_round_trips(self):
        obs.counter("c").inc(2)
        summary = obs.get_registry().summary()
        assert json.loads(render_json(summary)) == summary


class TestLabels:
    """Labelled instruments: identity, summary shape, escaping, merge."""

    def test_label_sets_are_distinct_series(self):
        obs.counter("hits", labels={"stream": "s0"}).inc(2)
        obs.counter("hits", labels={"stream": "s1"}).inc(3)
        obs.counter("hits").inc(1)
        summary = obs.get_registry().summary()
        assert summary['hits{stream="s0"}']["value"] == 2
        assert summary['hits{stream="s1"}']["value"] == 3
        assert summary["hits"]["value"] == 1
        assert summary['hits{stream="s0"}']["labels"] == {"stream": "s0"}
        # Unlabelled entries keep the pre-label summary shape exactly.
        assert "labels" not in summary["hits"]

    def test_label_order_does_not_matter(self):
        a = obs.counter("x", labels={"a": "1", "b": "2"})
        b = obs.counter("x", labels={"b": "2", "a": "1"})
        assert a is b

    def test_non_string_label_value_rejected(self):
        with pytest.raises(TypeError):
            obs.counter("bad", labels={"n": 3})

    def test_bad_label_name_rejected(self):
        with pytest.raises(ValueError):
            obs.counter("bad", labels={"0leading-digit": "v"})

    def test_escaping_golden(self):
        """The 0.0.4 escaping rules: backslash, double quote, newline."""
        from repro.obs import escape_label_value

        assert escape_label_value("plain") == "plain"
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("two\nlines") == "two\\nlines"
        # Backslash escapes first, so an escaped quote stays escaped.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_escaped_values_render_and_parse(self):
        obs.counter("esc", labels={"v": 'a\\b"c\nd'}).inc(1)
        text = render_prometheus(obs.get_registry().summary())
        assert 'repro_esc_total{v="a\\\\b\\"c\\nd"} 1' in text
        parse_prometheus_text(text)

    def test_type_header_once_across_label_sets(self):
        obs.counter("hits", labels={"stream": "s0"}).inc()
        obs.counter("hits", labels={"stream": "s1"}).inc()
        obs.counter("hits").inc()
        text = render_prometheus(obs.get_registry().summary())
        assert text.count("# TYPE repro_hits_total counter") == 1
        samples = parse_prometheus_text(text)
        assert set(samples["repro_hits_total"]) == {
            "",
            '{stream="s0"}',
            '{stream="s1"}',
        }

    def test_labeled_histogram_renders_le_last_and_parses(self):
        obs.histogram(
            "lat", buckets=(1.0, 2.0), labels={"error": "ValueError"}
        ).observe(0.5)
        obs.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = render_prometheus(obs.get_registry().summary())
        assert 'repro_lat_bucket{error="ValueError",le="1"} 1' in text
        assert 'repro_lat_count{error="ValueError"} 1' in text
        samples = parse_prometheus_text(text)
        assert samples["repro_lat_count"][""] == 1
        assert samples["repro_lat_count"]['{error="ValueError"}'] == 1

    def test_merge_sums_per_label_series(self):
        def build():
            registry = Registry()
            registry.counter("hits", labels={"stream": "s0"}).inc(2)
            registry.counter("hits", labels={"stream": "s1"}).inc(1)
            registry.counter("hits").inc(4)
            return registry.summary()

        merged = merge_summaries([build(), build()])
        assert merged['hits{stream="s0"}']["value"] == 4
        assert merged['hits{stream="s1"}']["value"] == 2
        assert merged["hits"]["value"] == 8
        assert merged['hits{stream="s0"}']["labels"] == {"stream": "s0"}

    def test_labeled_instrument_pickles_as_registry_reference(self):
        local = obs.counter("pick.labeled", labels={"k": "v"})
        local.inc(2)
        clone = pickle.loads(pickle.dumps(local))
        assert clone is obs.counter("pick.labeled", labels={"k": "v"})


class TestErrorSpans:
    def test_error_span_records_type_and_labeled_histogram(self):
        with pytest.raises(KeyError):
            with obs.span("stage.failing"):
                raise KeyError("missing")
        [record] = obs.spans()
        assert record.error
        assert record.error_type == "KeyError"
        registry = obs.get_registry()
        labeled = registry.get("stage.failing.seconds", labels={"error": "KeyError"})
        assert labeled is not None and labeled.count == 1
        # The success-path histogram stays untouched.
        plain = registry.get("stage.failing.seconds")
        assert plain is None or plain.count == 0

    def test_error_labeled_latency_renders_as_valid_prometheus(self):
        with pytest.raises(RuntimeError):
            with obs.span("stage.mixed"):
                raise RuntimeError("boom")
        with obs.span("stage.mixed"):
            pass
        text = render_prometheus(obs.get_registry().summary())
        samples = parse_prometheus_text(text)
        assert samples["repro_stage_mixed_seconds_count"][""] == 1
        assert samples["repro_stage_mixed_seconds_count"]['{error="RuntimeError"}'] == 1


class TestStatsCommand:
    """`repro stats` renders a dump as valid Prometheus text."""

    def _dump(self, tmp_path):
        obs.counter("monitor.polls", help="polls").inc(4)
        obs.histogram("monitor.apply.seconds", buckets=(0.001, 0.01)).observe(0.002)
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(obs.get_registry().summary()))
        return path

    def test_prometheus_output_parses(self, tmp_path, capsys):
        from repro.cli import main

        path = self._dump(tmp_path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        samples = parse_prometheus_text(out)
        assert samples["repro_monitor_polls_total"][""] == 4
        assert samples["repro_monitor_apply_seconds_count"][""] == 1

    def test_unwraps_full_stats_dump(self, tmp_path, capsys):
        from repro.cli import main

        obs.counter("wrapped").inc(9)
        path = tmp_path / "full.json"
        path.write_text(
            json.dumps({"merged_obs": obs.get_registry().summary(), "workers": {}})
        )
        assert main(["stats", str(path)]) == 0
        assert "repro_wrapped_total 9" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        from repro.cli import main

        path = self._dump(tmp_path)
        assert main(["stats", str(path), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["monitor.polls"]["value"] == 4

    def test_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        assert main(["stats", str(path)]) == 2


# ----------------------------------------------------------------------
# the switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_enable_disable_roundtrip(self):
        obs.disable()
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()

    def test_off_values(self):
        from repro.obs.state import _OFF_VALUES

        assert {"0", "false", "off", "no"} == set(_OFF_VALUES)


# ----------------------------------------------------------------------
# the instrumented hot paths actually report
# ----------------------------------------------------------------------
class TestInstrumentedMonitor:
    def test_monitor_populates_registry(self):
        from repro.core.monitor import StreamMonitor
        from repro.graph.labeled_graph import LabeledGraph
        from repro.graph.operations import EdgeChange

        query = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B")], [(0, 1, "x")]
        )
        monitor = StreamMonitor({"q0": query})
        monitor.add_stream("s0")
        monitor.apply("s0", EdgeChange.insert(1, 2, "x", "A", "B"))
        assert monitor.matches() == {("s0", "q0")}
        assert monitor.verified_matches() == {("s0", "q0")}
        summary = obs.get_registry().summary()
        assert summary["monitor.changes"]["value"] == 1
        assert summary["monitor.polls"]["value"] >= 1
        assert summary["monitor.verifier_calls"]["value"] == 1
        assert summary["monitor.apply.seconds"]["count"] == 1
        assert summary["nnt.deltas_delivered"]["value"] >= 1
        assert summary["join.dsc.dominance_checks"]["value"] >= 1

    def test_disabled_monitor_leaves_registry_empty(self):
        from repro.core.monitor import StreamMonitor
        from repro.graph.labeled_graph import LabeledGraph
        from repro.graph.operations import EdgeChange

        obs.disable()
        query = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B")], [(0, 1, "x")]
        )
        monitor = StreamMonitor({"q0": query})
        monitor.add_stream("s0")
        monitor.apply("s0", EdgeChange.insert(1, 2, "x", "A", "B"))
        assert monitor.matches() == {("s0", "q0")}
        summary = obs.get_registry().summary()
        counted = [
            entry
            for entry in summary.values()
            if entry.get("value", 0) or entry.get("count", 0)
        ]
        assert counted == []
