"""End-to-end tests of the edge-labeled dimension scheme (ablation A2's
extension) through the streaming monitor — the chemistry use case where
bond types carry signal."""

import random

import pytest

from repro import EdgeChange, LabeledGraph, StreamMonitor
from repro.isomorphism import SubgraphMatcher
from repro.nnt.projection import DimensionScheme

from .conftest import extract_connected_subgraph, random_labeled_graph

FINE = DimensionScheme(include_edge_label=True)


def bond_chain(labels, bonds):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index, bond in enumerate(bonds):
        graph.add_edge(index, index + 1, bond)
    return graph


class TestMonitorWithEdgeLabels:
    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline"))
    def test_distinguishes_bond_types(self, method):
        double_bond = bond_chain(["C", "O"], ["2"])
        monitor = StreamMonitor({"carbonyl": double_bond}, method=method, scheme=FINE)
        monitor.add_stream("mol")
        monitor.apply("mol", EdgeChange.insert(0, 1, "1", "C", "O"))  # single bond
        assert monitor.matches() == set()  # paper scheme would match here
        monitor.apply("mol", EdgeChange.insert(0, 3, "2", None, "O"))  # C=O appears
        assert monitor.matches() == {("mol", "carbonyl")}
        monitor.apply("mol", EdgeChange.delete(0, 3))
        assert monitor.matches() == set()

    def test_paper_scheme_is_weaker(self):
        query = bond_chain(["C", "O"], ["2"])
        stream = bond_chain(["C", "O"], ["1"])
        coarse = StreamMonitor({"q": query})
        coarse.add_stream(0, stream)
        fine = StreamMonitor({"q": query}, scheme=FINE)
        fine.add_stream(0, stream)
        assert coarse.matches() == {(0, "q")}  # false positive
        assert fine.matches() == set()  # pruned by the bond label

    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline"))
    def test_soundness_preserved(self, method):
        rng = random.Random(515)
        for trial in range(5):
            target = random_labeled_graph(
                rng, rng.randint(5, 8), extra_edges=3, edge_labels=("1", "2", "a")
            )
            queries = {
                f"q{i}": extract_connected_subgraph(rng, target, 3) for i in range(3)
            }
            monitor = StreamMonitor(queries, method=method, scheme=FINE)
            monitor.add_stream(0, target)
            truth = {
                (0, qid)
                for qid, query in queries.items()
                if SubgraphMatcher(target).is_subgraph(query)
            }
            assert truth <= monitor.matches()
            assert monitor.verified_matches() == truth

    def test_engines_agree_under_fine_scheme(self):
        rng = random.Random(616)
        target = random_labeled_graph(rng, 7, extra_edges=3, edge_labels=("x", "y"))
        queries = {
            f"q{i}": random_labeled_graph(rng, 3, extra_edges=1, edge_labels=("x", "y"))
            for i in range(4)
        }
        answers = set()
        for method in ("nl", "dsc", "skyline"):
            monitor = StreamMonitor(queries, method=method, scheme=FINE)
            monitor.add_stream(0, target)
            answers.add(frozenset(monitor.matches()))
        assert len(answers) == 1

    def test_fine_never_weaker_than_paper(self):
        rng = random.Random(717)
        for trial in range(8):
            target = random_labeled_graph(rng, 6, extra_edges=3, edge_labels=("x", "y"))
            query = random_labeled_graph(rng, 3, extra_edges=1, edge_labels=("x", "y"))
            coarse = StreamMonitor({"q": query})
            coarse.add_stream(0, target)
            fine = StreamMonitor({"q": query}, scheme=FINE)
            fine.add_stream(0, target)
            assert fine.matches() <= coarse.matches()
