"""gSpan correctness: canonical codes, exact supports, brute-force parity."""

import itertools
import random

import pytest

from repro.baselines.gspan import (
    MinedPattern,
    is_min_code,
    mine_frequent_subgraphs,
)
from repro.graph import LabeledGraph
from repro.isomorphism import are_isomorphic, is_subgraph_isomorphic

from .conftest import random_labeled_graph


def chain(labels, edge_label="-"):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, edge_label)
    return graph


def triangle(labels=("A", "A", "A")):
    graph = chain(list(labels))
    graph.add_edge(0, len(labels) - 1, "-")
    return graph


def all_connected_edge_subgraphs(graph: LabeledGraph, max_edges: int):
    """Brute-force oracle: every connected edge subgraph up to max_edges."""
    edges = list(graph.edges())
    seen = set()
    frontier = [frozenset([i]) for i in range(len(edges))]
    seen.update(frontier)
    out = []
    while frontier:
        next_frontier = []
        for edge_set in frontier:
            vertices = {v for i in edge_set for v in edges[i][:2]}
            sub = LabeledGraph()
            for vertex in vertices:
                sub.add_vertex(vertex, graph.vertex_label(vertex))
            for i in edge_set:
                u, v, label = edges[i]
                sub.add_edge(u, v, label)
            out.append(sub)
            if len(edge_set) < max_edges:
                for i, (u, v, _) in enumerate(edges):
                    if i not in edge_set and (u in vertices or v in vertices):
                        bigger = edge_set | {i}
                        if bigger not in seen:
                            seen.add(bigger)
                            next_frontier.append(bigger)
        frontier = next_frontier
    return out


def bruteforce_frequent(graphs, min_support, max_edges):
    representatives = []
    for graph_index, graph in enumerate(graphs):
        for sub in all_connected_edge_subgraphs(graph, max_edges):
            for rec in representatives:
                if rec[0].num_edges == sub.num_edges and are_isomorphic(rec[0], sub):
                    rec[1].add(graph_index)
                    break
            else:
                representatives.append((sub, {graph_index}))
    return [(p, frozenset(s)) for p, s in representatives if len(s) >= min_support]


class TestValidation:
    def test_min_support_positive(self):
        with pytest.raises(ValueError):
            mine_frequent_subgraphs([chain(["A", "B"])], 0, 2)

    def test_max_edges_positive(self):
        with pytest.raises(ValueError):
            mine_frequent_subgraphs([chain(["A", "B"])], 1, 0)


class TestSmallCases:
    def test_single_edge_db(self):
        mined = mine_frequent_subgraphs([chain(["A", "B"])], 1, 3)
        assert len(mined) == 1
        assert mined[0].support == 1
        assert mined[0].num_edges == 1

    def test_path_db(self):
        mined = mine_frequent_subgraphs([chain(["A", "B", "C"])], 1, 3)
        # patterns: A-B, B-C, A-B-C
        assert len(mined) == 3
        assert sorted(p.num_edges for p in mined) == [1, 1, 2]

    def test_triangle_patterns(self):
        mined = mine_frequent_subgraphs([triangle()], 1, 3)
        # A-A, A-A-A path, A-A-A triangle
        assert len(mined) == 3
        shapes = sorted((p.num_edges, p.graph.num_vertices) for p in mined)
        assert shapes == [(1, 2), (2, 3), (3, 3)]

    def test_support_counts_graphs_not_embeddings(self):
        star = LabeledGraph.from_vertices_and_edges(
            [(0, "A"), (1, "B"), (2, "B")], [(0, 1, "-"), (0, 2, "-")]
        )
        mined = mine_frequent_subgraphs([star], 1, 1)
        edge_pattern = [p for p in mined if p.num_edges == 1][0]
        assert edge_pattern.support == 1  # two embeddings, one graph

    def test_min_support_prunes(self):
        graphs = [chain(["A", "B"]), chain(["A", "B"]), chain(["C", "D"])]
        mined = mine_frequent_subgraphs(graphs, 2, 2)
        assert len(mined) == 1
        assert mined[0].support == 2

    def test_min_edges_floor(self):
        graphs = [chain(["A", "B", "C"])]
        mined = mine_frequent_subgraphs(graphs, 1, 3, min_edges=2)
        assert all(p.num_edges >= 2 for p in mined)
        assert len(mined) == 1

    def test_edge_label_sensitivity(self):
        graphs = [chain(["A", "B"], edge_label="x"), chain(["A", "B"], edge_label="y")]
        mined = mine_frequent_subgraphs(graphs, 1, 1)
        assert len(mined) == 2
        assert all(p.support == 1 for p in mined)


class TestIsMinCode:
    def test_single_edge_canonical(self):
        assert is_min_code([(0, 1, "A", "-", "B")])
        assert not is_min_code([(0, 1, "B", "-", "A")])

    def test_path_codes(self):
        good = [(0, 1, "A", "-", "B"), (1, 2, "B", "-", "C")]
        assert is_min_code(good)
        # Starting from the C end is not minimal.
        bad = [(0, 1, "B", "-", "C"), (1, 2, "B", "-", "A")]
        assert not is_min_code(bad)

    def test_every_mined_code_is_min(self):
        rng = random.Random(77)
        graphs = [random_labeled_graph(rng, 6, extra_edges=2) for _ in range(3)]
        for pattern in mine_frequent_subgraphs(graphs, 1, 3):
            assert is_min_code(list(pattern.code))


class TestAgainstBruteForce:
    @pytest.mark.parametrize("trial", range(4))
    @pytest.mark.parametrize("min_support", (1, 2))
    def test_parity(self, trial, min_support):
        rng = random.Random(600 + trial)
        graphs = [
            random_labeled_graph(
                rng, rng.randint(4, 6), extra_edges=rng.randint(0, 2),
                vertex_labels=("A", "B"), edge_labels=("x",),
            )
            for _ in range(4)
        ]
        mined = mine_frequent_subgraphs(graphs, min_support, 3)
        brute = bruteforce_frequent(graphs, min_support, 3)
        assert len(mined) == len(brute)
        for pattern, support in brute:
            matches = [
                m
                for m in mined
                if m.num_edges == pattern.num_edges and are_isomorphic(m.graph, pattern)
            ]
            assert len(matches) == 1
            assert matches[0].containing == support

    def test_no_duplicate_patterns(self):
        rng = random.Random(88)
        graphs = [random_labeled_graph(rng, 7, extra_edges=3) for _ in range(4)]
        mined = mine_frequent_subgraphs(graphs, 2, 4)
        for a, b in itertools.combinations(mined, 2):
            if a.num_edges == b.num_edges:
                assert not are_isomorphic(a.graph, b.graph)

    def test_supports_are_exact(self):
        rng = random.Random(89)
        graphs = [random_labeled_graph(rng, 8, extra_edges=2) for _ in range(5)]
        for pattern in mine_frequent_subgraphs(graphs, 2, 3):
            true_support = frozenset(
                i for i, g in enumerate(graphs) if is_subgraph_isomorphic(pattern.graph, g)
            )
            assert true_support == pattern.containing


class TestAntiMonotonicity:
    def test_support_never_grows_with_size(self):
        rng = random.Random(90)
        graphs = [random_labeled_graph(rng, 7, extra_edges=2) for _ in range(5)]
        mined = mine_frequent_subgraphs(graphs, 1, 3)
        # every (k+1)-edge pattern's support <= some k-edge subpattern's
        by_edges: dict[int, list[MinedPattern]] = {}
        for pattern in mined:
            by_edges.setdefault(pattern.num_edges, []).append(pattern)
        for size in (2, 3):
            for pattern in by_edges.get(size, []):
                smaller = by_edges.get(size - 1, [])
                parents = [
                    s for s in smaller if is_subgraph_isomorphic(s.graph, pattern.graph)
                ]
                assert parents, pattern.code
                assert all(pattern.support <= parent.support for parent in parents)


class TestTreesOnly:
    def test_all_patterns_are_trees(self):
        rng = random.Random(91)
        graphs = [random_labeled_graph(rng, 7, extra_edges=3) for _ in range(4)]
        for pattern in mine_frequent_subgraphs(graphs, 1, 4, trees_only=True):
            assert pattern.graph.num_edges == pattern.graph.num_vertices - 1
            assert pattern.graph.is_connected()

    def test_matches_full_mining_restricted_to_trees(self):
        rng = random.Random(92)
        graphs = [random_labeled_graph(rng, 6, extra_edges=2) for _ in range(4)]
        full = mine_frequent_subgraphs(graphs, 2, 3)
        trees = mine_frequent_subgraphs(graphs, 2, 3, trees_only=True)
        full_tree_codes = {
            p.code for p in full if p.graph.num_edges == p.graph.num_vertices - 1
        }
        assert {p.code for p in trees} == full_tree_codes
        # supports agree pattern by pattern
        by_code = {p.code: p for p in full}
        for pattern in trees:
            assert pattern.containing == by_code[pattern.code].containing
