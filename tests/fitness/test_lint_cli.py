"""The lint CLI surface: exit codes, JSON mode, rule selection."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_lint_clean_tree_exits_zero(capsys) -> None:
    code = repro_main(
        ["lint", str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "no violations found" in out


def test_lint_bad_file_exits_nonzero(capsys) -> None:
    # The RP004 fixture fires regardless of unit overrides (the rule is
    # unit-agnostic), so it works through the plain CLI too.
    code = repro_main(["lint", str(FIXTURES / "rp004_bad.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "RP004" in out


def test_lint_json_is_machine_readable(capsys) -> None:
    code = repro_main(["lint", "--format=json", str(FIXTURES / "rp004_bad.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["summary"]["errors"] == payload["summary"]["total"] > 0
    finding = payload["findings"][0]
    assert {"path", "line", "column", "rule", "severity", "message"} <= set(finding)
    assert finding["rule"] == "RP004"


def test_lint_select_runs_only_named_rules(capsys) -> None:
    code = repro_main(
        ["lint", "--select=RP006", str(FIXTURES / "rp004_bad.py")]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "no violations found" in out


def test_lint_unknown_rule_is_usage_error(capsys) -> None:
    code = repro_main(["lint", "--select=RP999", str(FIXTURES)])
    assert code == 2


def test_lint_missing_path_is_usage_error(capsys) -> None:
    code = repro_main(["lint", str(FIXTURES / "does_not_exist.py")])
    assert code == 2


def test_lint_list_rules_prints_catalog(capsys) -> None:
    code = repro_main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("RP001", "RP002", "RP003", "RP004", "RP005", "RP006", "RP007"):
        assert rule_id in out


def test_lint_project_clean_tree_exits_zero(capsys) -> None:
    code = repro_main(
        [
            "lint",
            "--project",
            "--strict",
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "benchmarks"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "no violations found" in out


def test_lint_project_rule_without_project_flag_is_usage_error(capsys) -> None:
    code = repro_main(["lint", "--select=RP011", str(FIXTURES / "rp004_bad.py")])
    assert code == 2
    assert "--project" in capsys.readouterr().err


def test_lint_strict_promotes_warnings_to_exit_one(
    capsys, tmp_path, monkeypatch
) -> None:
    """A span-less hot path is a WARNING: exit 0 normally, 1 under
    --strict."""
    from repro.analysis import project_rules

    target = tmp_path / "hotmod.py"
    target.write_text("class Monitor:\n    def apply(self, update):\n        return update\n")
    monkeypatch.setattr(
        project_rules, "HOT_PATHS", (("hotmod", "Monitor.apply"),)
    )

    code = repro_main(["lint", "--project", str(target)])
    out = capsys.readouterr().out
    assert code == 0
    assert "RP012" in out

    code = repro_main(["lint", "--project", "--strict", str(target)])
    assert code == 1


def test_lint_sarif_output_is_valid_and_annotated(capsys) -> None:
    code = repro_main(
        ["lint", "--format=sarif", str(FIXTURES / "rp004_bad.py")]
    )
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.analysis"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"RP001", "RP011", "RP015"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "RP004"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] > 0


def test_lint_baseline_round_trip(capsys, tmp_path) -> None:
    """--write-baseline records today's findings; --baseline then
    subtracts them (exit 0), and fixed findings are reported stale."""
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "rp004_bad.py")

    code = repro_main(["lint", f"--write-baseline={baseline}", fixture])
    capsys.readouterr()
    assert code == 0
    assert json.loads(baseline.read_text())["findings"]

    code = repro_main(["lint", f"--baseline={baseline}", fixture])
    out = capsys.readouterr().out
    assert code == 0
    assert "no violations found" in out

    # A clean tree against the same baseline: exit 0, staleness noted.
    code = repro_main(
        ["lint", f"--baseline={baseline}", str(FIXTURES / "rp006_bad.py")]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "stale" in captured.err


def test_lint_missing_baseline_is_usage_error(capsys, tmp_path) -> None:
    code = repro_main(
        [
            "lint",
            f"--baseline={tmp_path / 'absent.json'}",
            str(FIXTURES / "rp004_bad.py"),
        ]
    )
    assert code == 2


def test_standalone_module_entry_point() -> None:
    """``python -m repro.analysis`` works without the repro CLI."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "RP001" in result.stdout
