"""The real tree satisfies every invariant the analyzer enforces.

These are the repo's "fitness functions": they run the full rule pack
against ``src/`` and ``benchmarks/`` (the same scope CI lints) and pin
the specific structural properties the paper's correctness argument
needs — an isomorphism-free filtering path and encapsulated monitor
state.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import (
    ALLOWED_IMPORTS,
    FILTERING_PATH_UNITS,
    Analyzer,
    iter_python_files,
    make_rules,
    resolve_unit,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_SCOPE = [REPO_ROOT / "src", REPO_ROOT / "benchmarks"]


def test_tree_is_clean() -> None:
    """`python -m repro.analysis src benchmarks` exits 0."""
    findings = Analyzer().analyze_paths(LINT_SCOPE)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_project_tree_is_clean() -> None:
    """Whole-program mode too: `repro lint --project src benchmarks`
    exits 0 with zero suppressions — the cross-file protocol rules
    (RP011-RP015) hold on the real runtime, not just on fixtures."""
    findings = Analyzer().analyze_project(LINT_SCOPE)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_filtering_path_never_mentions_isomorphism() -> None:
    """Belt-and-braces textual check, independent of the rule engine:
    no module under nnt/ or join/ imports repro.isomorphism at all."""
    for package in ("nnt", "join"):
        for path in (REPO_ROOT / "src" / "repro" / package).rglob("*.py"):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                else:
                    continue
                for name in names:
                    assert "isomorphism" not in name, (
                        f"{path}:{node.lineno} imports {name!r} — the "
                        "filtering path must stay isomorphism-free"
                    )


def test_monitor_private_state_is_not_reached_into() -> None:
    """No file outside core/monitor.py mentions ``._indexes``."""
    for path in iter_python_files([REPO_ROOT / "src"]):
        if path.name == "monitor.py":
            continue
        for lineno, text in enumerate(path.read_text().splitlines(), start=1):
            assert "._indexes" not in text, f"{path}:{lineno}: {text.strip()}"


def test_layering_matrix_covers_every_unit_in_tree() -> None:
    """Every analyzed module resolves to a unit the matrix knows about,
    so a newly added package cannot silently bypass RP001."""
    from repro.analysis.layering import module_name_for_path

    for path in iter_python_files(LINT_SCOPE):
        unit = resolve_unit(module_name_for_path(path))
        assert unit in ALLOWED_IMPORTS, (
            f"{path} resolves to unit {unit!r} which is absent from "
            "ALLOWED_IMPORTS — add it to the layering matrix"
        )


def test_filtering_path_units_are_isomorphism_free_in_the_matrix() -> None:
    """The matrix itself never grants the filtering path access to the
    exact matcher (guards against a careless matrix edit)."""
    for unit in FILTERING_PATH_UNITS:
        allowed = ALLOWED_IMPORTS[unit]
        assert allowed != "*", f"{unit} must not import arbitrary units"
        assert "repro.isomorphism" not in allowed


def test_every_rule_is_documented() -> None:
    """docs/static_analysis.md catalogs every registered rule id —
    per-module and project rules alike."""
    from repro.analysis import all_project_rules

    catalog = (REPO_ROOT / "docs" / "static_analysis.md").read_text()
    for rule in make_rules():
        assert rule.rule_id in catalog, f"{rule.rule_id} missing from docs"
    for project_rule in all_project_rules():
        assert project_rule.rule_id in catalog, (
            f"{project_rule.rule_id} missing from docs"
        )


def test_mutation_version_is_a_public_monotone_counter() -> None:
    """The satellite API CachingVerifier depends on: versions advance
    exactly with graph mutations."""
    from repro import EdgeChange, LabeledGraph, StreamMonitor

    pattern = LabeledGraph.from_vertices_and_edges(
        [(0, "A"), (1, "B")], [(0, 1, "x")]
    )
    monitor = StreamMonitor({"q0": pattern})
    monitor.add_stream("s0")
    v0 = monitor.mutation_version("s0")
    monitor.apply("s0", EdgeChange.insert(10, 11, "x", "A", "B"))
    v1 = monitor.mutation_version("s0")
    assert v1 == v0 + 1
    # Reading results does not mutate.
    monitor.matches()
    assert monitor.mutation_version("s0") == v1
    monitor.apply("s0", EdgeChange.delete(10, 11))
    assert monitor.mutation_version("s0") == v1 + 1
