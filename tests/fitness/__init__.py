"""Architecture fitness tests: machine-checked invariants of the tree."""
