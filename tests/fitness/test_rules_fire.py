"""Every rule fires on its known-bad fixture, and ``# repro: noqa``
suppresses exactly the named rule on exactly that line.

Fixture protocol: each ``fixtures/rpNNN_bad.py`` is analyzed *as if* it
lived at a specific module path (unit override); every line carrying an
``expect-violation`` marker must yield exactly one finding of the rule
under test, and no other line may yield any.  Lines whose marker
coexists with a ``# repro: noqa[OTHER-ID]`` comment prove that waiving
a *different* rule does not silence this one.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import Analyzer, Finding, ProjectModel, make_project_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (rule id, pretend module name, pretend unit)
CASES = {
    "rp001_bad.py": ("RP001", "repro.nnt.badmod", "repro.nnt"),
    "rp002_bad.py": ("RP002", "repro.datasets.badmod", "repro.datasets"),
    "rp003_bad.py": ("RP003", "repro.nnt.badmod", "repro.nnt"),
    "rp004_bad.py": ("RP004", "repro.core.badmod", "repro.core"),
    "rp005_bad.py": ("RP005", "repro.join.badmod", "repro.join"),
    "rp006_bad.py": ("RP006", "benchmarks.bench_badmod", "benchmarks"),
    "rp007_bad.py": ("RP007", "repro.core.badmod", "repro.core"),
    "rp008_bad.py": ("RP008", "repro.core.badmod", "repro.core"),
    "rp009_bad.py": ("RP009", "repro.join.badmod", "repro.join"),
    "rp010_bad.py": ("RP010", "repro.runtime.badmod", "repro.runtime"),
    "rp016_bad.py": ("RP016", "repro.runtime.badmod", "repro.runtime"),
    "rp017_bad.py": ("RP017", "repro.runtime.badmod", "repro.runtime"),
}


def _expected_lines(path: Path) -> set[int]:
    return {
        lineno
        for lineno, text in enumerate(path.read_text().splitlines(), start=1)
        if "expect-violation" in text
    }


@pytest.mark.parametrize("fixture_name", sorted(CASES))
def test_rule_fires_on_bad_fixture(fixture_name: str) -> None:
    rule_id, module_name, unit = CASES[fixture_name]
    path = FIXTURES / fixture_name
    expected = _expected_lines(path)
    assert expected, f"fixture {fixture_name} has no expect-violation markers"

    findings = Analyzer().analyze_file(path, module_name=module_name, unit=unit)

    assert {f.line for f in findings} == expected
    assert {f.rule_id for f in findings} == {rule_id}
    # Exactly one finding per marked line (markers are unambiguous).
    assert len(findings) == len(expected)


@pytest.mark.parametrize("fixture_name", sorted(CASES))
def test_matching_noqa_silences_the_rule(fixture_name: str) -> None:
    """Appending ``# repro: noqa[RULE-ID]`` to every flagged line mutes
    the fixture completely — proving per-line, per-rule suppression."""
    rule_id, module_name, unit = CASES[fixture_name]
    path = FIXTURES / fixture_name
    lines = path.read_text().splitlines()
    for lineno in _expected_lines(path):
        lines[lineno - 1] += f"  # repro: noqa[{rule_id}]"
    silenced = "\n".join(lines) + "\n"

    findings = Analyzer().analyze_source(
        silenced, path=str(path), module_name=module_name, unit=unit
    )

    assert findings == []


def test_bare_noqa_silences_every_rule() -> None:
    source = "def f(items=[]):  # repro: noqa\n    return items\n"
    findings = Analyzer().analyze_source(
        source, module_name="repro.core.badmod", unit="repro.core"
    )
    assert findings == []


def test_noqa_is_line_scoped() -> None:
    """A waiver on one line must not leak to the next."""
    source = (
        "def f(items=[]):  # repro: noqa[RP004]\n"
        "    return items\n"
        "def g(table={}):\n"
        "    return table\n"
    )
    findings = Analyzer().analyze_source(
        source, module_name="repro.core.badmod", unit="repro.core"
    )
    assert [(f.rule_id, f.line) for f in findings] == [("RP004", 3)]


def test_noqa_accepts_comma_separated_ids() -> None:
    source = "def f(items=[]):  # repro: noqa[RP001, RP004]\n    return items\n"
    findings = Analyzer().analyze_source(
        source, module_name="repro.core.badmod", unit="repro.core"
    )
    assert findings == []


# ----------------------------------------------------------------------
# project rules (RP011+): fixtures run through the whole-program model
# ----------------------------------------------------------------------

#: single-file project fixtures -> (rule id, pretend module, pretend unit)
PROJECT_CASES = {
    "rp011_bad.py": ("RP011", "repro.runtime.badmod", "repro.runtime"),
    "rp012_bad.py": ("RP012", "repro.core.monitor", "repro.core"),
    "rp013_bad.py": ("RP013", "repro.runtime.badmod", "repro.runtime"),
    "rp014_bad.py": ("RP014", "repro.core.badmod", "repro.core"),
}

_MODULE_HEADER = re.compile(r"# module: (\S+)")


def _multi_module_entries(
    fixture_dir: str,
) -> list[tuple[str, str, str | None, str | None]]:
    """A directory fixture: each file declares its pretend module with a
    ``# module: <dotted>`` header comment."""
    entries = []
    for path in sorted((FIXTURES / fixture_dir).glob("*.py")):
        text = path.read_text()
        header = _MODULE_HEADER.match(text)
        assert header, f"{path} is missing its '# module:' header"
        entries.append((text, str(path), header.group(1), None))
    return entries


def _rp015_entries() -> list[tuple[str, str, str | None, str | None]]:
    return _multi_module_entries("rp015_bad")


def _project_findings(
    rule_id: str, entries: list[tuple[str, str, str | None, str | None]]
) -> list[Finding]:
    """Run exactly one project rule over an in-memory model (the other
    rules — including the per-module pack — would fire on the seeded
    badness that is not under test)."""
    model = ProjectModel.from_sources(entries)
    rules = make_project_rules([rule_id])
    assert rules, f"project rule {rule_id} is not registered"
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(model))
    return findings


@pytest.mark.parametrize("fixture_name", sorted(PROJECT_CASES))
def test_project_rule_fires_on_bad_fixture(fixture_name: str) -> None:
    rule_id, module_name, unit = PROJECT_CASES[fixture_name]
    path = FIXTURES / fixture_name
    expected = _expected_lines(path)
    assert expected, f"fixture {fixture_name} has no expect-violation markers"

    findings = _project_findings(
        rule_id, [(path.read_text(), str(path), module_name, unit)]
    )

    assert {f.line for f in findings} == expected
    assert {f.rule_id for f in findings} == {rule_id}
    assert len(findings) == len(expected)


def test_rp015_fires_on_cycle_and_transitive_reach() -> None:
    """The multi-module fixture seeds one import cycle and one
    transitive (two-hop) path from the filtering path to the exact
    matcher; RP015 must report both, anchored at the import lines."""
    entries = _rp015_entries()
    expected = {
        (path, lineno)
        for _, path, _, _ in entries
        for lineno in _expected_lines(Path(path))
    }
    assert expected

    findings = _project_findings("RP015", entries)

    assert {(f.path, f.line) for f in findings} == expected
    assert {f.rule_id for f in findings} == {"RP015"}


@pytest.mark.parametrize("fixture_name", sorted(PROJECT_CASES))
def test_noqa_silences_project_rules(fixture_name: str) -> None:
    """Project findings obey the same per-line suppression machinery as
    per-module ones (analyze_project routes them through it)."""
    rule_id, module_name, unit = PROJECT_CASES[fixture_name]
    path = FIXTURES / fixture_name
    lines = path.read_text().splitlines()
    for lineno in _expected_lines(path):
        lines[lineno - 1] += f"  # repro: noqa[{rule_id}]"
    silenced = "\n".join(lines) + "\n"

    findings = _project_findings(
        rule_id, [(silenced, str(path), module_name, unit)]
    )
    filtered = Analyzer._apply_suppressions(silenced, findings)

    assert filtered == []


def test_rp018_fires_on_uncatalogued_metric_name() -> None:
    """The two-module fixture pairs a miniature literal CATALOG with a
    dashboard consumer holding one typo'd metric literal; RP018 must
    flag exactly the typo'd line and leave catalogued names and
    docstring look-alikes alone."""
    entries = _multi_module_entries("rp018_bad")
    expected = {
        (path, lineno)
        for _, path, _, _ in entries
        for lineno in _expected_lines(Path(path))
    }
    assert expected

    findings = _project_findings("RP018", entries)

    assert {(f.path, f.line) for f in findings} == expected
    assert {f.rule_id for f in findings} == {"RP018"}
    assert all("serve.comit.seconds" in f.message for f in findings)


def test_rp018_noqa_silences_the_finding() -> None:
    entries = _multi_module_entries("rp018_bad")
    silenced_entries = []
    consumer_text = None
    for text, path, module, unit in entries:
        if module == "repro.dashboard":
            lines = text.splitlines()
            for lineno in _expected_lines(Path(path)):
                lines[lineno - 1] += "  # repro: noqa[RP018]"
            text = "\n".join(lines) + "\n"
            consumer_text = text
        silenced_entries.append((text, path, module, unit))
    assert consumer_text is not None

    findings = _project_findings("RP018", silenced_entries)
    filtered = Analyzer._apply_suppressions(consumer_text, findings)

    assert filtered == []


def test_rp018_flags_catalog_module_without_literal_dict() -> None:
    """If the catalog module exists but CATALOG is not a literal dict,
    the rule anchors a single finding on the catalog itself (it cannot
    vouch for any consumer)."""
    catalog_text = (
        "# module: repro.obs.catalog\n"
        "def _build():\n"
        "    return {}\n"
        "CATALOG = _build()\n"
    )
    entries = [
        (catalog_text, "catalog.py", "repro.obs.catalog", None),
    ]

    findings = _project_findings("RP018", entries)

    assert {f.rule_id for f in findings} == {"RP018"}
    assert len(findings) == 1
    assert "literal" in findings[0].message
