"""Every rule fires on its known-bad fixture, and ``# repro: noqa``
suppresses exactly the named rule on exactly that line.

Fixture protocol: each ``fixtures/rpNNN_bad.py`` is analyzed *as if* it
lived at a specific module path (unit override); every line carrying an
``expect-violation`` marker must yield exactly one finding of the rule
under test, and no other line may yield any.  Lines whose marker
coexists with a ``# repro: noqa[OTHER-ID]`` comment prove that waiving
a *different* rule does not silence this one.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Analyzer

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (rule id, pretend module name, pretend unit)
CASES = {
    "rp001_bad.py": ("RP001", "repro.nnt.badmod", "repro.nnt"),
    "rp002_bad.py": ("RP002", "repro.datasets.badmod", "repro.datasets"),
    "rp003_bad.py": ("RP003", "repro.nnt.badmod", "repro.nnt"),
    "rp004_bad.py": ("RP004", "repro.core.badmod", "repro.core"),
    "rp005_bad.py": ("RP005", "repro.join.badmod", "repro.join"),
    "rp006_bad.py": ("RP006", "benchmarks.bench_badmod", "benchmarks"),
    "rp007_bad.py": ("RP007", "repro.core.badmod", "repro.core"),
    "rp008_bad.py": ("RP008", "repro.core.badmod", "repro.core"),
    "rp009_bad.py": ("RP009", "repro.join.badmod", "repro.join"),
    "rp010_bad.py": ("RP010", "repro.runtime.badmod", "repro.runtime"),
}


def _expected_lines(path: Path) -> set[int]:
    return {
        lineno
        for lineno, text in enumerate(path.read_text().splitlines(), start=1)
        if "expect-violation" in text
    }


@pytest.mark.parametrize("fixture_name", sorted(CASES))
def test_rule_fires_on_bad_fixture(fixture_name: str) -> None:
    rule_id, module_name, unit = CASES[fixture_name]
    path = FIXTURES / fixture_name
    expected = _expected_lines(path)
    assert expected, f"fixture {fixture_name} has no expect-violation markers"

    findings = Analyzer().analyze_file(path, module_name=module_name, unit=unit)

    assert {f.line for f in findings} == expected
    assert {f.rule_id for f in findings} == {rule_id}
    # Exactly one finding per marked line (markers are unambiguous).
    assert len(findings) == len(expected)


@pytest.mark.parametrize("fixture_name", sorted(CASES))
def test_matching_noqa_silences_the_rule(fixture_name: str) -> None:
    """Appending ``# repro: noqa[RULE-ID]`` to every flagged line mutes
    the fixture completely — proving per-line, per-rule suppression."""
    rule_id, module_name, unit = CASES[fixture_name]
    path = FIXTURES / fixture_name
    lines = path.read_text().splitlines()
    for lineno in _expected_lines(path):
        lines[lineno - 1] += f"  # repro: noqa[{rule_id}]"
    silenced = "\n".join(lines) + "\n"

    findings = Analyzer().analyze_source(
        silenced, path=str(path), module_name=module_name, unit=unit
    )

    assert findings == []


def test_bare_noqa_silences_every_rule() -> None:
    source = "def f(items=[]):  # repro: noqa\n    return items\n"
    findings = Analyzer().analyze_source(
        source, module_name="repro.core.badmod", unit="repro.core"
    )
    assert findings == []


def test_noqa_is_line_scoped() -> None:
    """A waiver on one line must not leak to the next."""
    source = (
        "def f(items=[]):  # repro: noqa[RP004]\n"
        "    return items\n"
        "def g(table={}):\n"
        "    return table\n"
    )
    findings = Analyzer().analyze_source(
        source, module_name="repro.core.badmod", unit="repro.core"
    )
    assert [(f.rule_id, f.line) for f in findings] == [("RP004", 3)]


def test_noqa_accepts_comma_separated_ids() -> None:
    source = "def f(items=[]):  # repro: noqa[RP001, RP004]\n    return items\n"
    findings = Analyzer().analyze_source(
        source, module_name="repro.core.badmod", unit="repro.core"
    )
    assert findings == []
