"""The whole-program semantic model itself: import graph, call graph,
symbol resolution, and the degradation paths the CLI depends on."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import Analyzer, ProjectModel, iter_python_files
from repro.analysis.graphs import ImportEdge, ImportGraph
from repro.analysis.layering import module_name_for_path
from repro.analysis.rules import ModuleContext
from repro.analysis.rulepack import _imported_repro_modules

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_SCOPE = [REPO_ROOT / "src", REPO_ROOT / "benchmarks"]


# ----------------------------------------------------------------------
# property: the model's import view is a superset of RP001's per-file view
# ----------------------------------------------------------------------


def test_import_graph_is_superset_of_per_file_view() -> None:
    """Every ``repro.*`` import RP001 can see file-by-file also appears
    in the model's per-module import record, so no whole-graph check can
    be weaker than the per-file heuristic it upgrades."""
    model = ProjectModel.build(LINT_SCOPE)
    by_path = {info.path: info for info in model.infos}
    for path in iter_python_files(LINT_SCOPE):
        info = by_path[str(path)]
        context = ModuleContext(
            path=str(path),
            module_name=module_name_for_path(path),
            unit=info.unit,
            tree=ast.parse(path.read_text(encoding="utf-8"), filename=str(path)),
            source=info.source,
        )
        per_file: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                per_file.update(_imported_repro_modules(context, node))
        model_view = {target for target, _, _, _ in info.repro_imports}
        assert per_file <= model_view, (
            f"{path}: per-file imports {sorted(per_file - model_view)} "
            "missing from the project model"
        )


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------


def _graph(edges: list[tuple[str, str]], nodes: set[str]) -> ImportGraph:
    graph = ImportGraph(nodes)
    for lineno, (source, target) in enumerate(edges, start=1):
        graph.add_edge(ImportEdge(source, target, lineno, 0))
    return graph


def test_cycle_detection_finds_sccs_not_tree_edges() -> None:
    graph = _graph(
        [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")],
        {"a", "b", "c", "d"},
    )
    assert graph.cycles() == [["a", "b", "c"]]


def test_typing_only_edges_do_not_create_cycles() -> None:
    graph = ImportGraph({"a", "b"})
    graph.add_edge(ImportEdge("a", "b", 1, 0))
    graph.add_edge(ImportEdge("b", "a", 1, 0, typing_only=True))
    assert graph.cycles() == []


def test_shortest_path_is_deterministic_and_minimal() -> None:
    graph = _graph(
        [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d"), ("a", "d")],
        {"a", "b", "c", "d"},
    )
    assert graph.shortest_path("a", {"d"}) == ["a", "d"]
    assert graph.shortest_path("b", {"d"}) == ["b", "d"]
    assert graph.shortest_path("d", {"a"}) is None


def test_function_level_imports_are_lazy_not_cyclic() -> None:
    """A function-body import is the canonical cycle *break*; the model
    must not report the broken cycle as if it still existed."""
    model = ProjectModel.from_sources(
        [
            (
                "import repro.obs.registry\n",
                "a.py",
                "repro.obs.instruments",
                None,
            ),
            (
                "def lookup():\n    import repro.obs.instruments\n",
                "b.py",
                "repro.obs.registry",
                None,
            ),
        ]
    )
    assert model.import_graph.cycles() == []


# ----------------------------------------------------------------------
# call graph / span queries
# ----------------------------------------------------------------------


def test_call_graph_resolves_self_and_typed_attributes() -> None:
    source = (
        "from repro import obs\n"
        "class Inner:\n"
        "    def work(self):\n"
        "        with obs.span('inner.work'):\n"
        "            return 1\n"
        "class Outer:\n"
        "    inner: Inner\n"
        "    def run(self):\n"
        "        return self.step()\n"
        "    def step(self):\n"
        "        return self.inner.work()\n"
    )
    model = ProjectModel.from_sources(
        [(source, "m.py", "repro.core.modelmod", None)]
    )
    run_key = "repro.core.modelmod:Outer.run"
    certain = model.call_graph.reachable([run_key], include_dynamic=False)
    assert "repro.core.modelmod:Outer.step" in certain
    assert "repro.core.modelmod:Inner.work" in certain
    # And the span query sees through the whole chain.
    assert model.opens_span(run_key)


def test_opens_span_rejects_dynamic_only_coverage() -> None:
    """A span behind an unresolvable receiver must not count."""
    source = (
        "from repro import obs\n"
        "class Helper:\n"
        "    def work(self):\n"
        "        with obs.span('helper.work'):\n"
        "            return 1\n"
        "class Host:\n"
        "    def run(self):\n"
        "        target = self._pick()\n"
        "        return target.work()\n"
        "    def _pick(self):\n"
        "        return Helper()\n"
    )
    model = ProjectModel.from_sources(
        [(source, "m.py", "repro.core.modelmod", None)]
    )
    assert not model.opens_span("repro.core.modelmod:Host.run")


def test_resolve_global_follows_imports_across_modules() -> None:
    defining = "SHARED = []\nFROZEN = ('a', 'b')\n"
    importing = "from repro.core.defs import SHARED, FROZEN\n"
    model = ProjectModel.from_sources(
        [
            (defining, "defs.py", "repro.core.defs", None),
            (importing, "use.py", "repro.core.use", None),
        ]
    )
    use = model.modules["repro.core.use"]
    owner, name = model.resolve_global(use, "SHARED")
    assert owner.canonical == "repro.core.defs"
    assert name in owner.symbols.mutable_globals
    owner, name = model.resolve_global(use, "FROZEN")
    assert name not in owner.symbols.mutable_globals


# ----------------------------------------------------------------------
# degradation: broken files must not abort the run (satellite)
# ----------------------------------------------------------------------


def test_analyze_paths_degrades_non_utf8_files(tmp_path: Path) -> None:
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    bad = tmp_path / "bad.py"
    bad.write_bytes(b"x = '\xff\xfe broken'\n")

    findings = Analyzer().analyze_paths([tmp_path])

    rp000 = [f for f in findings if f.rule_id == "RP000"]
    assert len(rp000) == 1
    assert rp000[0].path == str(bad)
    assert "unreadable" in rp000[0].message


def test_project_model_degrades_broken_files(tmp_path: Path) -> None:
    (tmp_path / "good.py").write_text("x = 1\n")
    (tmp_path / "binary.py").write_bytes(b"\xff\xfe")
    (tmp_path / "syntax.py").write_text("def broken(:\n")

    model = ProjectModel.build([tmp_path])

    assert len(model.infos) == 1  # the good file still parsed
    assert {f.rule_id for f in model.errors} == {"RP000"}
    assert len(model.errors) == 2
