"""Type-checks the analyzer package with mypy --strict.

Skipped when mypy is not installed (the container images used for
tier-1 runs do not ship it); CI installs mypy and runs this for real.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)


def test_analysis_package_is_strictly_typed() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro/analysis"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_baseline_config_passes() -> None:
    """The repo-wide (non-strict) mypy profile from pyproject.toml."""
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
