"""RP008 fixture — analyzed as if it were ``repro.core.badmod``.

Never imported at runtime; the fitness tests feed it to the analyzer
with a unit override and expect each tagged line to fire.
"""

import multiprocessing  # expect-violation
import threading  # expect-violation
import queue  # repro: noqa[RP008]
from concurrent.futures import ThreadPoolExecutor  # expect-violation
from multiprocessing import Queue as MPQueue  # repro: noqa[RP001]  # expect-violation
import _thread  # expect-violation
import asyncio  # repro: noqa[RP017]  # allowed here: RP017 territory, not RP008
import heapq  # allowed: not a concurrency module

__all__ = [
    "multiprocessing",
    "threading",
    "queue",
    "ThreadPoolExecutor",
    "MPQueue",
    "_thread",
    "asyncio",
    "heapq",
]
