"""RP012 fixture — analyzed as if it were ``repro.core.monitor``.

A StreamMonitor whose hot paths lost their spans in a refactor: apply()
opens nothing, matches() opens nothing, events() would be covered only
through a *dynamic* call (not accepted), while verified_matches() keeps
its span and stays clean.
"""

from repro import obs


class StreamMonitor:
    def apply(self, update):  # expect-violation
        return self._ingest(update)

    def matches(self, query_id):  # expect-violation
        return list(self._scan(query_id))

    def events(self, query_id):  # expect-violation
        # Dynamic dispatch: the receiver's type is unknown, so the span
        # inside whatever ``source.matches`` is does not count.
        source = self._pick_source()
        return source.matches(query_id)

    def verified_matches(self, query_id):  # covered: opens a span itself
        with obs.span("monitor.verified_matches"):
            return self.matches(query_id)

    def _ingest(self, update):
        return update

    def _scan(self, query_id):
        yield query_id

    def _pick_source(self):
        return self
