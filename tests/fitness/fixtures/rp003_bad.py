"""RP003 fixture — analyzed as if it were ``repro.nnt.badmod``."""


def classify(score: float) -> int:
    if score == 0.5:  # expect-violation
        return 1
    if score != 1.0:  # repro: noqa[RP003]
        return 2
    if -2.5 == score:  # repro: noqa[RP005]  # expect-violation
        return 3
    if score == 2:  # allowed: integer literal comparison
        return 4
    return 0
