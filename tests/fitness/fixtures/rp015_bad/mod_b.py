# module: repro.nnt.cycle_b
"""The other half of the cycle: imports cycle_a right back."""

import repro.nnt.cycle_a


def backward(x):
    return repro.nnt.cycle_a.forward(x)
