# module: repro.core.helper
"""An innocent-looking intermediary that leans on the exact matcher."""

import repro.isomorphism.vf2


def prepare(window):
    return repro.isomorphism.vf2.match(window)
