# module: repro.nnt.cycle_a
"""Half of an import cycle inside the NNT unit."""

import repro.nnt.cycle_b  # expect-violation


def forward(x):
    return repro.nnt.cycle_b.backward(x)
