# module: repro.join.helper
"""A filtering-path module that reaches the exact matcher transitively:
no single import here looks wrong, but helper -> core.helper ->
isomorphism violates the Lemma 4.2 contract at the graph level."""

import repro.core.helper  # expect-violation


def candidates(window):
    return repro.core.helper.prepare(window)
