"""RP004 fixture — analyzed as if it were ``repro.core.badmod``."""


def accumulate(items=[]):  # expect-violation
    return items


def lookup(table={}):  # repro: noqa[RP004]
    return table


def tags(values=set()):  # repro: noqa[RP001]  # expect-violation
    return values


def clean(values=None):  # allowed: sentinel default
    return values if values is not None else []


pick_default = lambda acc=[]: acc  # expect-violation  # noqa: E731
