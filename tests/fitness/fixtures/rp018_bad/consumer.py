# module: repro.dashboard
"""A dashboard consumer with one typo'd metric name.

``serve.commit.seconds`` exists in the catalog; ``serve.comit.seconds``
does not — the panel built on it would render empty forever without
RP018 noticing the misspelling.  Names inside docstrings (like the two
above, or ``repro.obs.quality``) must never be flagged.
"""


def render(summary):
    good = summary.get("serve.commit.seconds")
    typo = summary.get("serve.comit.seconds")  # expect-violation
    fp = summary.get("filter.fp_ratio_estimate")
    return good, typo, fp
