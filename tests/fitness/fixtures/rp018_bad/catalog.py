# module: repro.obs.catalog
"""A miniature metric catalog for the RP018 fixture."""

CATALOG = {
    "serve.commit.seconds": ("histogram", "seconds per serve commit"),
    "serve.rejected": ("counter", "commands rejected at the edge"),
    "filter.fp_ratio_estimate": ("gauge", "sampled FP-ratio estimate"),
}
