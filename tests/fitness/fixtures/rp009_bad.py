"""Known-bad fixture: ad-hoc clock reads in an instrumented package.

Analyzed as if it were ``repro.join.badmod`` — inside the instrumented
filtering path, where every measured interval must flow through
``repro.obs`` spans/instruments (or ``repro.core.metrics.Stopwatch``).
"""

import time
from time import perf_counter  # expect-violation


def measure_dominance_check() -> float:
    started = time.perf_counter()  # expect-violation
    coarse = time.monotonic_ns()  # expect-violation
    wall = time.time()  # expect-violation
    del coarse, wall
    return time.perf_counter() - started  # expect-violation
