"""RP017 fixture — analyzed as if it were ``repro.runtime.badmod``.

Never imported at runtime; the fitness tests feed it to the analyzer
with a unit override (``repro.runtime``, which is exempt from RP008 —
and RP008 no longer covers asyncio anyway — so only RP017 fires) and
expect each tagged line to fire.
"""

import asyncio  # expect-violation
import asyncio.queues  # expect-violation
from asyncio import StreamReader  # expect-violation
from asyncio.events import AbstractEventLoop  # repro: noqa[RP001]  # expect-violation
from asyncio import run  # repro: noqa[RP017]
import selectors  # allowed: not an event-loop module
import socket  # allowed: sockets without a loop are fine

__all__ = [
    "asyncio",
    "StreamReader",
    "AbstractEventLoop",
    "run",
    "selectors",
    "socket",
]
