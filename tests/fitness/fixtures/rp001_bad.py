"""RP001 fixture — analyzed as if it were ``repro.nnt.badmod``.

Never imported at runtime; the fitness tests feed it to the analyzer
with a unit override and expect each tagged line to fire.
"""

from repro.isomorphism.vf2 import SubgraphMatcher  # expect-violation
from ..isomorphism import vf2  # expect-violation
from repro.core.monitor import StreamMonitor  # expect-violation
from repro.isomorphism import is_subgraph_isomorphic  # repro: noqa[RP001]
from repro.isomorphism.vf2 import is_subgraph_isomorphic as also_bad  # repro: noqa[RP002]  # expect-violation
from repro.graph.labeled_graph import LabeledGraph  # allowed: nnt may import graph

__all__ = [
    "SubgraphMatcher",
    "vf2",
    "StreamMonitor",
    "is_subgraph_isomorphic",
    "also_bad",
    "LabeledGraph",
]
