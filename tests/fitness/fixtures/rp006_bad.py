"""RP006 fixture — analyzed as if it were ``benchmarks.bench_badmod``."""

import time

from time import time as now  # expect-violation


def run_once(workload) -> float:
    start = time.time()  # expect-violation
    workload()
    finish = time.time()  # repro: noqa[RP006]
    tick = time.time()  # repro: noqa[RP002]  # expect-violation
    good_start = time.perf_counter()  # allowed: monotonic timer
    workload()
    return (finish - start) + (time.perf_counter() - good_start) + tick + now()
