"""Known-bad fixture: ad-hoc trace-id minting in an instrumented package.

Analyzed as if it were ``repro.runtime.badmod`` — the runtime propagates
trace contexts but must never fabricate ids itself: every trace/span id
comes from ``repro.obs.trace`` (pid + per-process counter), or exported
traces stop assembling into trees.
"""

import uuid  # expect-violation
from secrets import token_hex  # expect-violation


def new_trace_id() -> str:  # expect-violation
    return uuid.uuid4().hex


def fabricate_span_id() -> str:
    return os.urandom(8).hex()  # expect-violation


def fabricate_token() -> str:
    return token_hex(8)
