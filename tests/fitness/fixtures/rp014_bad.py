"""RP014 fixture — analyzed as if it were ``repro.core.badmod``.

The checkpoint manifest written by save and the one consumed by restore
have drifted: ``depth_limit`` is written but never read back (the
restored monitor silently loses it), and restore demands ``shard`` with
``[]`` although no save path ever writes it.
"""


def save_monitor(monitor, path):
    manifest = {
        "format": 1,
        "method": monitor.method,
        "depth_limit": monitor.depth_limit,  # expect-violation
        "query_ids": sorted(monitor.queries),
    }
    manifest["stream_count"] = len(monitor.streams)  # expect-violation
    path.write_text(repr(manifest))


def load_monitor(path):
    manifest = eval(path.read_text())  # noqa: S307 — fixture only
    monitor = {}
    monitor["method"] = manifest["method"]
    monitor["queries"] = manifest["query_ids"]
    monitor["shard"] = manifest["shard"]  # expect-violation
    # Tolerant back-compat read: exempt even though never written.
    monitor["labels"] = manifest.get("edge_labels", None)
    return monitor


def checkpoint_stats(path):
    manifest = eval(path.read_text())  # noqa: S307 — fixture only
    return {"format": manifest["format"]}
