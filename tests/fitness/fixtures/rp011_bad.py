"""RP011 fixture — analyzed as if it were ``repro.runtime.badmod``.

Everything here crosses the coordinator->worker pickle boundary (queue
puts, journal records, CMD_* tuples) carrying something that either
cannot pickle or forks into divergent state.
"""

CMD_APPLY = "apply"

PENDING = []  # module-level mutable state — forks diverge


def submit(queue, update):
    queue.put((CMD_APPLY, update, lambda x: x))  # expect-violation


def journal(journal_store, stream_id):
    journal_store.record(
        (CMD_APPLY, stream_id, (e for e in range(3)))  # expect-violation
    )


def enqueue_local(queue):
    def helper(x):
        return x

    queue.put_nowait((CMD_APPLY, helper))  # expect-violation


def stamp(obs, update):
    obs.stamp_envelope((CMD_APPLY, update, PENDING))  # expect-violation


def enqueue_ok(queue, update):
    # Plain immutable payloads are fine.
    queue.put((CMD_APPLY, update, ("snapshot", 3)))
