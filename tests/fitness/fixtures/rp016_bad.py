"""RP016 fixture — analyzed as if it were ``repro.runtime.badmod``.

Never imported at runtime; the fitness tests feed it to the analyzer
with a unit override (``repro.runtime``, which is exempt from RP008,
so only RP016 fires) and expect each tagged line to fire.
"""

import multiprocessing.shared_memory  # expect-violation
from multiprocessing import shared_memory  # expect-violation
from multiprocessing.shared_memory import SharedMemory  # expect-violation
from multiprocessing import resource_tracker  # repro: noqa[RP001]  # expect-violation
from multiprocessing.resource_tracker import unregister  # repro: noqa[RP016]
import multiprocessing  # allowed here: RP008 territory, not RP016
from multiprocessing import connection  # allowed: not a shm module

__all__ = [
    "multiprocessing",
    "shared_memory",
    "SharedMemory",
    "resource_tracker",
    "unregister",
    "connection",
]
