"""RP007 fixture — analyzed as if it were ``repro.core.badmod``."""


class Owner:
    def __init__(self) -> None:
        self._cache: dict = {}

    def peer_total(self, other: "Owner") -> int:
        return len(other._cache)  # allowed: same-class peer access


class Foreign:
    def poke(self, owner: Owner):
        return owner._cache  # expect-violation

    def poke_quietly(self, owner: Owner):
        return owner._cache  # repro: noqa[RP007]

    def poke_wrong(self, owner: Owner):
        return owner._cache  # repro: noqa[RP003]  # expect-violation
