"""RP013 fixture — analyzed as if it were ``repro.runtime.badmod``.

The public runtime surface reaches, through two hops of the call graph,
a helper that swallows every exception.  A typed best-effort handler on
the same path stays legal.
"""


def drain(queue):
    return _drain_step(queue)


def _drain_step(queue):
    return _swallow(queue)


def _swallow(queue):
    try:
        return queue.get_nowait()
    except Exception:  # expect-violation
        pass


def close(worker):
    try:
        worker.join()
    except (TimeoutError, OSError):  # allowed: typed, best-effort close
        pass


def shutdown(worker):
    try:
        worker.terminate()
    except BaseException:  # logged, not swallowed — allowed
        worker.log_failure()
        raise


def _unreachable_helper():
    # Not reachable from any public function: not on the control path,
    # so even a broad do-nothing except is out of scope here.
    try:
        return 1
    except Exception:
        pass
