"""RP002 fixture — analyzed as if it were ``repro.datasets.badmod``."""

import random

import numpy as np


def draw() -> tuple:
    value = random.random()  # expect-violation
    pick = random.choice([1, 2, 3])  # repro: noqa[RP002]
    unseeded_instance = random.Random()  # expect-violation
    seeded_instance = random.Random(7)  # allowed: explicit seed
    wrong_waiver = random.randint(0, 9)  # repro: noqa[RP001]  # expect-violation
    return value, pick, unseeded_instance, seeded_instance, wrong_waiver


def draw_numpy() -> tuple:
    noise = np.random.rand(3)  # expect-violation
    unseeded_rng = np.random.default_rng()  # expect-violation
    seeded_rng = np.random.default_rng(17)  # allowed: explicit seed
    return noise, unseeded_rng, seeded_rng
