"""RP005 fixture — analyzed as if it were ``repro.join.badmod``."""


def candidate_list(pairs):
    return list({pair for pair in pairs})  # expect-violation


def ordered(pairs):
    return sorted({pair for pair in pairs})  # allowed: explicit order


def comprehension(pairs):
    return [pair for pair in set(pairs)]  # repro: noqa[RP005]


def union_list(known, extra):
    return list(known | set(extra))  # repro: noqa[RP001]  # expect-violation


def generate(pairs):
    yield from set(pairs)  # expect-violation


def generate_sorted(pairs):
    yield from sorted(set(pairs))  # allowed: explicit order
