"""The SLO engine: burn-rate hysteresis, objectives, metric exports.

Every test drives the state machine with a fake clock and a hand-built
timeline, so the ok -> warn -> breach -> recover trajectory is pinned
evaluation by evaluation — including the asymmetric hysteresis (one bad
evaluation warns, ``breach_after`` breach, ``clear_after`` healthy ones
recover) and the no-data-is-ok convention.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import Registry, SloEngine, SloRule, Timeline
from repro.obs.slo import BREACH, DEFAULT_RULES, OK, STATE_CODES, WARN


@pytest.fixture(autouse=True)
def clean_obs():
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float = 1.0) -> float:
        self.now += dt
        return self.now


def gauge_entry(value: float) -> dict:
    return {"kind": "gauge", "help": "", "value": value}


def counter_entry(value: float) -> dict:
    return {"kind": "counter", "help": "", "value": value}


def hist_entry(counts: list, total_sum: float) -> dict:
    return {
        "kind": "histogram",
        "help": "",
        "bounds": [0.1, 1.0],
        "counts": list(counts),
        "sum": total_sum,
        "count": sum(counts),
    }


def gauge_rule(**overrides) -> SloRule:
    base = dict(
        name="depth",
        metric="runtime.inbox_depth",
        objective="gauge_max",
        threshold=10.0,
        warn_after=1,
        breach_after=3,
        clear_after=2,
    )
    base.update(overrides)
    return SloRule(**base)


def feed_gauge(clock: FakeClock, timeline: Timeline, value: float) -> None:
    timeline.sample({"runtime.inbox_depth": gauge_entry(value)}, t=clock.tick())


# ----------------------------------------------------------------------
# rule validation
# ----------------------------------------------------------------------
class TestSloRule:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            gauge_rule(objective="p99")

    def test_rejects_breach_before_warn(self):
        with pytest.raises(ValueError):
            gauge_rule(warn_after=3, breach_after=1)

    def test_rejects_bad_quantile_and_window(self):
        with pytest.raises(ValueError):
            gauge_rule(q=1.5)
        with pytest.raises(ValueError):
            gauge_rule(window=0.0)

    def test_gauge_min_violates_below_threshold(self):
        rule = gauge_rule(objective="gauge_min", threshold=0.5)
        assert rule.violated_by(0.4)
        assert not rule.violated_by(0.6)

    def test_default_rules_are_valid_and_unique(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert len(set(names)) == len(names)
        SloEngine()  # constructs without raising

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            SloEngine(rules=[gauge_rule(), gauge_rule()])


# ----------------------------------------------------------------------
# the burn-rate state machine
# ----------------------------------------------------------------------
class TestHysteresis:
    def test_ok_warn_breach_recover_trajectory(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        engine = SloEngine(rules=[gauge_rule()], timeline=timeline, clock=clock)

        # Healthy: stays ok.
        feed_gauge(clock, timeline, 3.0)
        engine.evaluate()
        assert engine.state_of("depth") == OK

        # First violation: warn immediately (warn_after=1).
        feed_gauge(clock, timeline, 50.0)
        engine.evaluate()
        assert engine.state_of("depth") == WARN

        # Second violation: still warn (breach_after=3).
        feed_gauge(clock, timeline, 50.0)
        engine.evaluate()
        assert engine.state_of("depth") == WARN

        # Third consecutive violation: breach.
        feed_gauge(clock, timeline, 50.0)
        engine.evaluate()
        assert engine.state_of("depth") == BREACH

        # One healthy evaluation is not enough to clear (clear_after=2).
        feed_gauge(clock, timeline, 2.0)
        engine.evaluate()
        assert engine.state_of("depth") == BREACH

        # Second consecutive healthy evaluation recovers.
        feed_gauge(clock, timeline, 2.0)
        engine.evaluate()
        assert engine.state_of("depth") == OK

    def test_flapping_never_reaches_breach(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        engine = SloEngine(rules=[gauge_rule()], timeline=timeline, clock=clock)
        for _ in range(5):
            feed_gauge(clock, timeline, 50.0)
            engine.evaluate()
            feed_gauge(clock, timeline, 1.0)
            engine.evaluate()
        assert engine.state_of("depth") != BREACH

    def test_breach_counter_counts_transitions_not_evaluations(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        engine = SloEngine(rules=[gauge_rule()], timeline=timeline, clock=clock)
        for _ in range(6):  # stays breached after the third evaluation
            feed_gauge(clock, timeline, 50.0)
            engine.evaluate()
        snap = engine.snapshot()["rules"][0]
        assert snap["state"] == BREACH
        assert snap["breaches"] == 1

    def test_no_data_is_ok(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        engine = SloEngine(rules=[gauge_rule()], timeline=timeline, clock=clock)
        timeline.sample({}, t=clock.tick())
        results = engine.evaluate()
        assert results[0]["state"] == OK
        assert results[0]["value"] is None

    def test_no_data_heals_a_warned_rule(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        engine = SloEngine(
            rules=[gauge_rule(clear_after=1)], timeline=timeline, clock=clock
        )
        feed_gauge(clock, timeline, 50.0)
        engine.evaluate()
        assert engine.state_of("depth") == WARN
        # The gauge disappears from later samples beyond the window.
        clock.tick(gauge_rule().window + 1.0)
        timeline.sample({}, t=clock.now)
        engine.evaluate()
        assert engine.state_of("depth") == OK


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------
class TestObjectives:
    def test_quantile_objective_uses_windowed_percentile(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        rule = SloRule(
            "p95", "serve.commit.seconds", "quantile", 0.5, q=0.95,
            warn_after=1, breach_after=1,
        )
        engine = SloEngine(rules=[rule], timeline=timeline, clock=clock)
        timeline.sample(
            {"serve.commit.seconds": hist_entry([0, 0, 0], 0.0)}, t=clock.tick()
        )
        timeline.sample(
            {"serve.commit.seconds": hist_entry([0, 0, 10], 50.0)}, t=clock.tick()
        )
        engine.evaluate()
        assert engine.state_of("p95") == BREACH
        assert engine.snapshot()["rules"][0]["value"] == pytest.approx(1.0)

    def test_rate_objective(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        rule = SloRule(
            "rejects", "serve.rejected", "rate_max", 1.0,
            warn_after=1, breach_after=1,
        )
        engine = SloEngine(rules=[rule], timeline=timeline, clock=clock)
        timeline.sample({"serve.rejected": counter_entry(0)}, t=clock.tick())
        timeline.sample({"serve.rejected": counter_entry(10)}, t=clock.tick())
        engine.evaluate()  # 10 rejects over 1s >> 1/s
        assert engine.state_of("rejects") == BREACH

    def test_complement_measures_one_minus_value(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        rule = SloRule(
            "precision", "filter.fp_ratio_estimate", "gauge_min", 0.5,
            complement=True, warn_after=1, breach_after=1,
        )
        engine = SloEngine(rules=[rule], timeline=timeline, clock=clock)
        timeline.sample(
            {"filter.fp_ratio_estimate": gauge_entry(0.8)}, t=clock.tick()
        )
        engine.evaluate()  # precision = 1 - 0.8 = 0.2 < 0.5
        assert engine.state_of("precision") == BREACH
        assert engine.snapshot()["rules"][0]["value"] == pytest.approx(0.2)


# ----------------------------------------------------------------------
# exports + snapshot
# ----------------------------------------------------------------------
class TestExports:
    def test_state_gauge_and_breach_counter_exported(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        engine = SloEngine(
            rules=[gauge_rule(breach_after=1)], timeline=timeline, clock=clock
        )
        feed_gauge(clock, timeline, 50.0)
        engine.evaluate()
        summary = obs.get_registry().summary()
        assert summary['slo.state{rule="depth"}']["value"] == STATE_CODES[BREACH]
        assert summary['slo.breaches{rule="depth"}']["value"] == 1

    def test_worst_ranks_across_rules(self):
        clock = FakeClock()
        timeline = Timeline(clock=clock)
        rules = [
            gauge_rule(name="a", breach_after=1),
            gauge_rule(name="b", threshold=1e9),
        ]
        engine = SloEngine(rules=rules, timeline=timeline, clock=clock)
        assert engine.worst == OK
        feed_gauge(clock, timeline, 50.0)
        engine.evaluate()
        assert engine.state_of("a") == BREACH
        assert engine.state_of("b") == OK
        assert engine.worst == BREACH
        assert engine.snapshot()["worst"] == BREACH

    def test_snapshot_shape(self):
        engine = SloEngine(rules=[gauge_rule()], timeline=Timeline())
        snap = engine.snapshot()
        assert snap["worst"] == OK
        (rule,) = snap["rules"]
        assert rule["name"] == "depth"
        assert rule["metric"] == "runtime.inbox_depth"
        assert rule["q"] is None  # not a quantile objective
        assert rule["state"] == OK
        assert rule["changed_at"] is None

    def test_evaluate_without_timeline_raises(self):
        with pytest.raises(ValueError):
            SloEngine(rules=[gauge_rule()]).evaluate()

    def test_every_default_rule_metric_is_catalogued(self):
        from repro.obs import catalog

        for rule in DEFAULT_RULES:
            assert catalog.known(rule.metric), rule.metric
