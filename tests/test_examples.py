"""The shipped examples must stay runnable (they are executable docs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example, capsys):
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "network_intrusion.py",
        "fraud_ring.py",
        "chemical_reactions.py",
        "proximity_monitoring.py",
        "windowed_flows.py",
    } <= set(EXAMPLES)


def test_quickstart_soundness_line(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    assert "soundness check passed" in capsys.readouterr().out


def test_module_search_path_unpolluted():
    # Examples must not rely on sys.path side effects.
    assert str(EXAMPLES_DIR) not in sys.path
