"""Tests for monitor checkpointing and the caching verifier."""

import json
import random

import pytest

from repro import EdgeChange, LabeledGraph, StreamMonitor
from repro.core.checkpoint import load_monitor, save_monitor
from repro.core.verify import CachingVerifier
from repro.nnt.projection import DimensionScheme


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(f"n{index}", label)
    for index in range(len(labels) - 1):
        graph.add_edge(f"n{index}", f"n{index + 1}", "-")
    return graph


def make_monitor(method="dsc"):
    monitor = StreamMonitor(
        {"ab": chain(["A", "B"]), "abc": chain(["A", "B", "C"])}, method=method
    )
    monitor.add_stream("s0", chain(["A", "B", "C", "A"]))
    monitor.add_stream("s1", chain(["C", "C"]))
    return monitor


class TestCheckpoint:
    def test_round_trip_answers(self, tmp_path):
        original = make_monitor()
        save_monitor(original, tmp_path / "ckpt")
        restored = load_monitor(tmp_path / "ckpt")
        assert restored.matches() == original.matches()
        assert restored.verified_matches() == original.verified_matches()
        assert restored.method == original.method
        assert restored.depth_limit == original.depth_limit

    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline"))
    def test_restored_monitor_accepts_updates(self, tmp_path, method):
        original = make_monitor(method)
        save_monitor(original, tmp_path / "ckpt")
        restored = load_monitor(tmp_path / "ckpt")
        for monitor in (original, restored):
            monitor.apply("s1", EdgeChange.insert("x", "y", "-", "A", "B"))
        assert restored.matches() == original.matches()

    def test_scheme_preserved(self, tmp_path):
        monitor = StreamMonitor(
            {"ab": chain(["A", "B"])},
            scheme=DimensionScheme(include_edge_label=True),
        )
        monitor.add_stream("s", chain(["A", "B"]))
        save_monitor(monitor, tmp_path / "ckpt")
        restored = load_monitor(tmp_path / "ckpt")
        assert restored.scheme.include_edge_label is True
        assert restored.matches() == monitor.matches()

    def test_manifest_contents(self, tmp_path):
        save_monitor(make_monitor(), tmp_path / "ckpt")
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["format"] == 1
        assert manifest["query_ids"] == ["ab", "abc"]
        assert manifest["stream_ids"] == ["s0", "s1"]

    def test_unsupported_format_rejected(self, tmp_path):
        directory = tmp_path / "ckpt"
        save_monitor(make_monitor(), directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["format"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_monitor(directory)

    def test_empty_monitor(self, tmp_path):
        monitor = StreamMonitor({"ab": chain(["A", "B"])})
        save_monitor(monitor, tmp_path / "ckpt")
        restored = load_monitor(tmp_path / "ckpt")
        assert restored.stream_ids() == []
        assert restored.matches() == set()


class TestCachingVerifier:
    def test_matches_plain_verification(self):
        monitor = make_monitor()
        verifier = CachingVerifier(monitor)
        assert verifier.verified_matches() == monitor.verified_matches()

    def test_cache_hits_on_quiet_polls(self):
        monitor = make_monitor()
        verifier = CachingVerifier(monitor)
        verifier.verified_matches()
        first = verifier.stats["verifications"]
        assert first > 0
        verifier.verified_matches()  # nothing changed
        assert verifier.stats["verifications"] == first
        assert verifier.stats["cache_hits"] >= first

    def test_reverifies_after_change(self):
        monitor = make_monitor()
        verifier = CachingVerifier(monitor)
        verifier.verified_matches()
        before = verifier.stats["verifications"]
        # Delete and re-insert the same edge: the stream version advances
        # while the candidate pairs stay in place, forcing re-verification.
        monitor.apply("s0", EdgeChange.delete("n0", "n1"))
        monitor.apply("s0", EdgeChange.insert("n0", "n1", "-", "A", "B"))
        result = verifier.verified_matches()
        assert verifier.stats["verifications"] > before
        assert result == monitor.verified_matches()

    def test_randomized_equivalence(self):
        rng = random.Random(2024)
        monitor = make_monitor()
        verifier = CachingVerifier(monitor)
        for step in range(60):
            graph = monitor.graph("s0")
            edges = list(graph.edges())
            if edges and rng.random() < 0.4:
                u, v, _ = rng.choice(edges)
                monitor.apply("s0", EdgeChange.delete(u, v))
            else:
                vertices = list(graph.vertices())
                if len(vertices) >= 2:
                    u, v = rng.sample(vertices, 2)
                    if not graph.has_edge(u, v):
                        monitor.apply("s0", EdgeChange.insert(u, v, "-"))
            if step % 3 == 0:
                assert verifier.verified_matches() == monitor.verified_matches()
        # A quiet double poll must be all cache hits when candidates exist.
        verifier.verified_matches()
        hits_before = verifier.stats["cache_hits"]
        verifications_before = verifier.stats["verifications"]
        verifier.verified_matches()
        assert verifier.stats["verifications"] == verifications_before
        if monitor.matches():
            assert verifier.stats["cache_hits"] > hits_before
