"""The ``repro top`` dashboard: quantile math, frame rendering from
every stats shape (bare summary, local monitor, sharded ``merged_obs``),
and the repaint loop."""

from __future__ import annotations

import io
import random

import pytest

from repro import obs
from repro.dashboard import (
    ANSI_CLEAR,
    histogram_quantile,
    render_dashboard,
    run_top,
)
from repro.obs import Registry, Timeline

from .conftest import random_labeled_graph


@pytest.fixture(autouse=True)
def clean_obs():
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


HIST = {
    "kind": "histogram",
    "help": "",
    "bounds": [0.001, 0.01, 0.1],
    "counts": [2, 6, 2, 0],
    "sum": 0.06,
    "count": 10,
}


class TestHistogramQuantile:
    def test_empty_histogram_is_none(self):
        empty = {"kind": "histogram", "bounds": [1.0], "counts": [0, 0], "count": 0}
        assert histogram_quantile(empty, 0.5) is None

    def test_interpolates_inside_the_crossing_bucket(self):
        # p50: target 5 of 10; 2 land below 1ms, crossing the second
        # bucket (1ms..10ms) at (5-2)/6 of its width.
        assert histogram_quantile(HIST, 0.5) == pytest.approx(
            0.001 + (0.01 - 0.001) * 3 / 6
        )

    def test_low_quantile_lands_in_first_bucket(self):
        assert histogram_quantile(HIST, 0.1) == pytest.approx(0.001 * 1 / 2)

    def test_overflow_bucket_reports_last_bound(self):
        tail = {"kind": "histogram", "bounds": [0.001], "counts": [0, 4], "count": 4}
        assert histogram_quantile(tail, 0.99) == 0.001

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            histogram_quantile(HIST, 1.5)


def synthetic_stats() -> dict:
    return {
        "num_streams": 2,
        "num_queries": 3,
        "method": "nl",
        "inbox_depths": {0: 1, 1: 0},
        "backpressure": {
            "policy": "spill",
            "accepted_batches": 12,
            "dropped": 1,
            "spilled": 2,
            "parked": 0,
        },
        "obs": {
            "monitor.apply.seconds": dict(HIST),
            "monitor.polls": {"kind": "counter", "help": "", "value": 4},
            "monitor.changes": {"kind": "counter", "help": "", "value": 20},
            "monitor.events": {"kind": "counter", "help": "", "value": 3},
            'filter.candidates{query="q0",stream="s0"}': {
                "kind": "counter",
                "help": "",
                "value": 5,
                "labels": {"query": "q0", "stream": "s0"},
            },
            "filter.fp_ratio_estimate": {"kind": "gauge", "help": "", "value": 0.25},
            "filter.probe.checked": {"kind": "counter", "help": "", "value": 8},
            "filter.probe.skipped": {"kind": "counter", "help": "", "value": 2},
            'join.nl.pruned{dim="(1, \'A\', \'B\')"}': {
                "kind": "counter",
                "help": "",
                "value": 6,
                "labels": {"dim": "(1, 'A', 'B')"},
            },
            'join.nl.pruned{dim="combination"}': {
                "kind": "counter",
                "help": "",
                "value": 2,
                "labels": {"dim": "combination"},
            },
        },
    }


class TestRenderDashboard:
    def test_frame_shows_every_section(self):
        frame = render_dashboard(synthetic_stats())
        assert "streams=2  queries=3" in frame
        assert "engine=nl" in frame
        assert "p50=" in frame and "p90=" in frame and "p99=" in frame
        assert "changes=20  polls=4  events=3" in frame
        assert "shard0=1  shard1=0" in frame
        assert "policy=spill" in frame and "dropped=1" in frame
        assert "candidates=5" in frame
        assert "fp_ratio~0.250" in frame
        assert "probed=8" in frame and "probe_skipped=2" in frame
        assert "8 pruned" in frame
        assert "(1, 'A', 'B')" in frame and "combination" in frame

    def test_shm_and_rescale_panels(self):
        stats = synthetic_stats()
        stats["shm"] = {"segments": 7, "bytes": 4096, "rings": 2}
        stats["rescale"] = {"count": 3, "last_seconds": 0.25, "active": True}
        stats["obs"]["shm.remaps"] = {"kind": "counter", "help": "", "value": 4}
        stats["obs"]["shm.ring_overflow"] = {"kind": "counter", "help": "", "value": 1}
        stats["obs"]["runtime.bytes_pickled"] = {
            "kind": "counter",
            "help": "",
            "value": 1234,
        }
        frame = render_dashboard(stats)
        assert "shm plane       segments=7  bytes=4096  remaps=4" in frame
        assert "ring_overflows=1  queue_bytes=1234" in frame
        assert "rescale         count=3" in frame
        assert "in-flight" in frame

    def test_shm_panels_absent_for_non_shm_runs(self):
        frame = render_dashboard(synthetic_stats())
        assert "shm plane" not in frame
        assert "rescale " not in frame

    def test_serve_panels(self):
        stats = synthetic_stats()
        stats["serve"] = {
            "timestamp": 7,
            "accepted_batches": 40,
            "dead_letters": 2,
            "sessions": 3,
            "queue_depth": 5,
            "breaker": "half_open",
            "policy": "shed",
            "admitted": 50,
            "rejected_rate": 4,
            "rejected_breaker": 1,
            "rejected_queue": 2,
            "rejected_draining": 0,
            "shed": 6,
        }
        stats["obs"]["serve.commit.seconds"] = dict(HIST)
        frame = render_dashboard(stats)
        assert "serve           sessions=3  queue=5  breaker=half_open  t=7" in frame
        assert "admitted=50  rejected=7  shed=6  dlq=2  batches=40" in frame
        assert "commit latency  p50=" in frame

    def test_serve_panel_absent_without_server(self):
        frame = render_dashboard(synthetic_stats())
        assert "serve " not in frame
        assert "admission" not in frame

    def test_frame_degrades_without_observability(self):
        frame = render_dashboard({"num_streams": 1, "num_queries": 1})
        assert "streams=1" in frame
        assert "fp_ratio~-" in frame  # no estimate yet

    def test_bare_summary_is_accepted(self):
        frame = render_dashboard(synthetic_stats()["obs"])
        assert "p50=" in frame and "candidates=5" in frame

    def test_live_monitor_stats_render(self):
        from repro.core.monitor import StreamMonitor
        from repro.datasets.stream_gen import synthesize_stream

        rng = random.Random(9)
        queries = {
            f"q{i}": random_labeled_graph(rng, 3, extra_edges=1) for i in range(2)
        }
        monitor = StreamMonitor(queries, method="dsc")
        base = random_labeled_graph(rng, 6, extra_edges=2)
        stream = synthesize_stream(base, 0.3, 0.2, 4, rng, all_pairs=True, name="s0")
        monitor.add_stream("s0", stream.initial)
        for ops in stream.operations:
            monitor.apply("s0", ops)
            monitor.matches()
        stats = dict(monitor.stats())
        stats["obs"] = obs.get_registry().summary()
        frame = render_dashboard(stats)
        assert "apply latency" in frame and "(n=" in frame
        assert "pruning power" in frame


class TestWindowedPercentiles:
    def timeline_with_burst(self) -> "Timeline":
        """Two samples: the baseline carries the lifetime HIST counts,
        the second adds ten fast (<1ms) observations — so the windowed
        view shows the burst, not the lifetime mix."""
        timeline = Timeline()
        first = dict(HIST)
        timeline.sample({"monitor.apply.seconds": first}, t=0.0)
        second = dict(HIST)
        second["counts"] = [12, 6, 2, 0]
        second["count"] = 20
        second["sum"] = 0.065
        timeline.sample({"monitor.apply.seconds": second}, t=1.0)
        return timeline

    def test_without_timeline_percentiles_are_lifetime(self):
        frame = render_dashboard(synthetic_stats())
        assert "(n=10, lifetime)" in frame

    def test_with_timeline_percentiles_use_window_deltas(self):
        frame = render_dashboard(
            synthetic_stats(), timeline=self.timeline_with_burst()
        )
        # Only the ten-fast-observation delta is in the window: n=10,
        # scope "window", and every percentile sits in the sub-1ms
        # bucket even though the lifetime histogram crosses 10ms.
        assert "(n=10, window)" in frame
        assert "(n=10, lifetime)" not in frame
        apply_line = next(
            line for line in frame.splitlines() if "apply latency" in line
        )
        assert "ms" not in apply_line  # all three percentiles render in us

    def test_idle_window_falls_back_to_lifetime(self):
        timeline = Timeline()
        timeline.sample({"monitor.apply.seconds": dict(HIST)}, t=0.0)
        timeline.sample({"monitor.apply.seconds": dict(HIST)}, t=1.0)
        frame = render_dashboard(synthetic_stats(), timeline=timeline)
        assert "(n=10, lifetime)" in frame


class TestOverloadPanel:
    def overload_timeline(self) -> "Timeline":
        timeline = Timeline()

        def summary(admitted, rejected, breaker):
            return {
                "serve.admitted": {"kind": "counter", "help": "", "value": admitted},
                "serve.rejected": {"kind": "counter", "help": "", "value": rejected},
                "serve.breaker_state": {"kind": "gauge", "help": "", "value": breaker},
            }

        timeline.sample(summary(0, 0, 0), t=0.0)
        timeline.sample(summary(10, 0, 0), t=1.0)
        timeline.sample(summary(12, 30, 2), t=2.0)
        timeline.sample(summary(12, 31, 0), t=3.0)
        return timeline

    def test_panel_shows_sparklines_and_breaker_transitions(self):
        frame = render_dashboard(synthetic_stats(), timeline=self.overload_timeline())
        assert "overload timeline" in frame
        lines = {
            line.split("[")[0].strip(): line
            for line in frame.splitlines()
            if "[" in line
        }
        assert "peak=10.0/s" in lines["admitted"]
        assert "peak=30.0/s" in lines["rejected"]
        assert "peak=0.0/s" in lines["shed"]
        # closed -> open -> closed: two transitions, glyphs . and !.
        assert "transitions=2" in lines["breaker"]
        assert "!" in lines["breaker"]

    def test_panel_absent_without_timeline_or_traffic(self):
        assert "overload timeline" not in render_dashboard(synthetic_stats())
        idle = Timeline()
        idle.sample({}, t=0.0)
        idle.sample({}, t=1.0)
        frame = render_dashboard(synthetic_stats(), timeline=idle)
        assert "overload timeline" not in frame


class TestRunTop:
    def test_paints_the_requested_frames_without_clearing(self):
        out = io.StringIO()
        frames = run_top(
            lambda: synthetic_stats(), out, interval=0.0, iterations=3, clear=False
        )
        assert frames == 3
        text = out.getvalue()
        assert text.count("repro top") == 3
        assert ANSI_CLEAR not in text

    def test_clear_mode_prefixes_each_frame(self):
        out = io.StringIO()
        run_top(lambda: synthetic_stats(), out, interval=0.0, iterations=2, clear=True)
        assert out.getvalue().count(ANSI_CLEAR) == 2

    def test_keyboard_interrupt_ends_the_loop_cleanly(self):
        out = io.StringIO()
        polls = {"n": 0}

        def poll():
            if polls["n"] >= 1:
                raise KeyboardInterrupt
            polls["n"] += 1
            return synthetic_stats()

        assert run_top(poll, out, interval=0.0, iterations=None, clear=False) == 1


class TestTopCli:
    def test_replay_mode_paints_and_exits(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets.stream_gen import synthesize_stream
        from repro.graph.io import write_graph_set, write_stream

        rng = random.Random(13)
        queries = {
            f"q{i}": random_labeled_graph(rng, 3, extra_edges=1) for i in range(2)
        }
        qpath = tmp_path / "queries.txt"
        write_graph_set(list(queries.values()), qpath, names=list(queries))
        spaths = []
        for i in range(2):
            base = random_labeled_graph(rng, 6, extra_edges=2)
            stream = synthesize_stream(
                base, 0.3, 0.2, 3, rng, all_pairs=True, name=f"s{i}"
            )
            path = tmp_path / f"s{i}.txt"
            write_stream(stream, path)
            spaths.append(str(path))
        code = main(
            ["top", "--queries", str(qpath), "--streams", *spaths,
             "--iterations", "2", "--interval", "0", "--no-clear"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("repro top") == 2
        assert "apply latency" in out
