"""The metrics timeline: delta encoding, windows, series, sampling.

Everything here runs on hand-built summaries and explicit ``t=``
timestamps — no real clock, no monitor — so the delta-encoding and
window arithmetic are pinned exactly: the baseline sample carries no
deltas, windowed histogram percentiles come from bucket *increments*
(a lifetime spike outside the window cannot skew them), and gauges
carry forward instead of rating.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import Registry, Timeline, TimelineSampler, bucket_quantile


@pytest.fixture(autouse=True)
def clean_obs():
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    was_enabled = obs.enabled()
    obs.enable()
    yield
    obs.set_registry(previous)
    obs.clear_spans()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


def counter_entry(value: float) -> dict:
    return {"kind": "counter", "help": "", "value": value}


def gauge_entry(value: float) -> dict:
    return {"kind": "gauge", "help": "", "value": value}


def hist_entry(counts: list, total_sum: float, bounds=(0.1, 1.0)) -> dict:
    return {
        "kind": "histogram",
        "help": "",
        "bounds": list(bounds),
        "counts": list(counts),
        "sum": total_sum,
        "count": sum(counts),
    }


# ----------------------------------------------------------------------
# bucket_quantile
# ----------------------------------------------------------------------
class TestBucketQuantile:
    def test_empty_is_none(self):
        assert bucket_quantile([0.1, 1.0], [0, 0, 0], 0.5) is None

    def test_interpolates_within_bucket(self):
        # 10 observations all inside (0.1, 1.0]: median halfway through
        # the bucket mass -> linear interpolation inside its edges.
        value = bucket_quantile([0.1, 1.0], [0, 10, 0], 0.5)
        assert value == pytest.approx(0.1 + 0.9 * 0.5)

    def test_overflow_bucket_reports_last_finite_bound(self):
        assert bucket_quantile([0.1, 1.0], [0, 0, 5], 0.99) == 1.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            bucket_quantile([1.0], [1, 0], 1.5)


# ----------------------------------------------------------------------
# delta encoding
# ----------------------------------------------------------------------
class TestDeltaEncoding:
    def test_baseline_has_no_deltas(self):
        timeline = Timeline()
        sample = timeline.sample(
            {"c": counter_entry(10), "g": gauge_entry(3), "h": hist_entry([2, 1, 0], 0.5)},
            t=100.0,
        )
        assert sample.dt == 0.0
        assert sample.counters == {}
        assert sample.histograms == {}
        assert sample.gauges == {"g": 3.0}

    def test_counter_deltas_are_sparse(self):
        timeline = Timeline()
        timeline.sample({"a": counter_entry(5), "b": counter_entry(7)}, t=0.0)
        sample = timeline.sample(
            {"a": counter_entry(9), "b": counter_entry(7)}, t=2.0
        )
        assert sample.dt == 2.0
        assert sample.counters == {"a": 4.0}  # unchanged b costs nothing

    def test_histogram_deltas_are_per_interval(self):
        timeline = Timeline()
        timeline.sample({"h": hist_entry([3, 0, 0], 0.1)}, t=0.0)
        sample = timeline.sample({"h": hist_entry([3, 2, 0], 1.3)}, t=1.0)
        entry = sample.histograms["h"]
        assert entry["counts"] == [0, 2, 0]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(1.2)

    def test_ring_is_bounded(self):
        timeline = Timeline(capacity=3)
        for i in range(10):
            timeline.sample({"c": counter_entry(i)}, t=float(i))
        assert len(timeline) == 3
        assert timeline.sampled == 10

    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError):
            Timeline(capacity=1)

    def test_sampling_mints_a_counter(self):
        timeline = Timeline()
        timeline.sample({}, t=0.0)
        timeline.sample({}, t=1.0)
        entry = obs.get_registry().summary()["timeline.samples"]
        assert entry["value"] == 2


# ----------------------------------------------------------------------
# windows
# ----------------------------------------------------------------------
class TestWindow:
    def build(self) -> Timeline:
        timeline = Timeline()
        timeline.sample(
            {"c": counter_entry(0), "g": gauge_entry(1), "h": hist_entry([0, 0, 0], 0.0)},
            t=0.0,
        )
        timeline.sample(
            {"c": counter_entry(6), "g": gauge_entry(4), "h": hist_entry([0, 0, 3], 30.0)},
            t=10.0,
        )
        timeline.sample(
            {"c": counter_entry(10), "g": gauge_entry(2), "h": hist_entry([8, 0, 3], 30.8)},
            t=20.0,
        )
        return timeline

    def test_full_window_delta_and_rate(self):
        window = self.build().window()
        assert window.delta("c") == 10.0
        assert window.duration == 20.0
        assert window.rate("c") == pytest.approx(0.5)

    def test_trailing_window_excludes_old_samples(self):
        # Cutoff at t=15 keeps only the t=20 sample, whose delta covers
        # the (10, 20] interval.
        window = self.build().window(5.0)
        assert window.delta("c") == 4.0
        assert window.rate("c") == pytest.approx(0.4)

    def test_windowed_quantile_ignores_outside_spike(self):
        # The three slow (overflow-bucket) observations land in the first
        # interval; the trailing window only sees the eight fast ones.
        timeline = self.build()
        lifetime = bucket_quantile([0.1, 1.0], [8, 0, 3], 0.95)
        windowed = timeline.window(5.0).quantile("h", 0.95)
        assert windowed == pytest.approx(0.095)
        assert lifetime > windowed

    def test_gauge_reads_latest_in_window(self):
        assert self.build().window().gauge("g") == 2.0

    def test_histogram_delta_counts_via_delta(self):
        assert self.build().window().delta("h") == 11.0

    def test_missing_metric(self):
        window = self.build().window()
        assert window.gauge("nope") is None
        assert window.quantile("nope", 0.5) is None
        assert window.delta("nope") == 0.0

    def test_empty_window_rate_is_none(self):
        timeline = Timeline()
        timeline.sample({"c": counter_entry(1)}, t=0.0)
        assert timeline.window().rate("c") is None  # baseline only: dt 0


class TestLabelAggregation:
    def test_counter_labels_sum(self):
        timeline = Timeline()
        timeline.sample(
            {'c{k="a"}': counter_entry(0), 'c{k="b"}': counter_entry(0)}, t=0.0
        )
        timeline.sample(
            {'c{k="a"}': counter_entry(3), 'c{k="b"}': counter_entry(4)}, t=1.0
        )
        assert timeline.window().delta("c") == 7.0

    def test_prefix_does_not_cross_metric_boundaries(self):
        timeline = Timeline()
        timeline.sample({"cat": counter_entry(0), "c": counter_entry(0)}, t=0.0)
        timeline.sample({"cat": counter_entry(5), "c": counter_entry(1)}, t=1.0)
        assert timeline.window().delta("c") == 1.0

    def test_histogram_label_sets_merge(self):
        timeline = Timeline()
        timeline.sample(
            {
                'h{k="a"}': hist_entry([0, 0, 0], 0.0),
                'h{k="b"}': hist_entry([0, 0, 0], 0.0),
            },
            t=0.0,
        )
        timeline.sample(
            {
                'h{k="a"}': hist_entry([2, 0, 0], 0.1),
                'h{k="b"}': hist_entry([0, 4, 0], 2.0),
            },
            t=1.0,
        )
        merged = timeline.window().histogram("h")
        assert merged["counts"] == [2, 4, 0]
        assert merged["count"] == 6


# ----------------------------------------------------------------------
# series + JSON
# ----------------------------------------------------------------------
class TestSeries:
    def test_counter_series_rates_per_interval(self):
        timeline = Timeline()
        timeline.sample({"c": counter_entry(0)}, t=0.0)
        timeline.sample({"c": counter_entry(4)}, t=2.0)
        timeline.sample({"c": counter_entry(4)}, t=4.0)
        timeline.sample({"c": counter_entry(10)}, t=6.0)
        assert timeline.series("c") == [0.0, 2.0, 0.0, 3.0]

    def test_gauge_series_carries_forward(self):
        timeline = Timeline()
        timeline.sample({"g": gauge_entry(5)}, t=0.0)
        timeline.sample({}, t=1.0)  # gauge absent: carry 5 forward
        timeline.sample({"g": gauge_entry(7)}, t=2.0)
        assert timeline.series("g") == [5.0, 5.0, 7.0]

    def test_points_limit_keeps_newest(self):
        timeline = Timeline()
        for i in range(5):
            timeline.sample({"g": gauge_entry(i)}, t=float(i))
        assert timeline.series("g", points=2) == [3.0, 4.0]

    def test_to_json_is_json_serializable(self):
        timeline = Timeline(capacity=4)
        timeline.sample({"c": counter_entry(0), "g": gauge_entry(1)}, t=0.0)
        timeline.sample({"c": counter_entry(2), "g": gauge_entry(3)}, t=1.0)
        doc = json.loads(json.dumps(timeline.to_json()))
        assert doc["capacity"] == 4
        assert doc["sampled"] == 2
        assert len(doc["samples"]) == 2
        assert doc["samples"][1]["counters"] == {"c": 2.0}


# ----------------------------------------------------------------------
# sampler cadence
# ----------------------------------------------------------------------
class TestTimelineSampler:
    def test_maybe_sample_honours_interval(self):
        timeline = Timeline()
        sampler = TimelineSampler(timeline, lambda: {}, interval=1.0)
        assert sampler.maybe_sample(now=0.0) is not None
        assert sampler.maybe_sample(now=0.5) is None
        assert sampler.maybe_sample(now=0.99) is None
        assert sampler.maybe_sample(now=1.0) is not None
        assert timeline.sampled == 2

    def test_force_resets_cadence(self):
        timeline = Timeline()
        sampler = TimelineSampler(timeline, lambda: {}, interval=1.0)
        sampler.maybe_sample(now=0.0)
        sampler.force(now=0.5)
        assert sampler.maybe_sample(now=1.0) is None  # due moved to 1.5
        assert sampler.maybe_sample(now=1.5) is not None

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            TimelineSampler(Timeline(), lambda: {}, interval=0.0)
