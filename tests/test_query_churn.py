"""Live query churn: crash atomicity, shm leak-freedom, fingerprint
dedup exactness, and checkpoint round-trips of the churned query set.

Registration goes through the journaled ``CMD_REGISTER_QUERY`` control
path, so a SIGKILL at any instant leaves the query either fully present
(journal put succeeded → replay re-registers it on the respawned shard)
or fully absent (put never happened) — never half-registered on some
shards.  Deregistration retires the query's dominance rows and shm row
storage; cycling queries must not accumulate shared-memory segments.
Fingerprint dedup lets identical NPV projections share one group of
dominance rows while every query id keeps its own exact verdicts.
"""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path

import pytest

from repro.core.checkpoint import load_monitor, save_monitor
from repro.core.monitor import StreamMonitor
from repro.graph import LabeledGraph
from repro.runtime import ShardedMonitor
from repro.runtime.shm import live_segments

from .conftest import random_labeled_graph
from .test_soak_differential import random_query
from .test_vf2 import nx_subgraph_iso

needs_shm_dir = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm to scan"
)


def small_queries(rng: random.Random, count: int = 3) -> dict:
    return {
        f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
        for i in range(count)
    }


def small_mirrors(rng: random.Random, count: int = 4) -> dict:
    return {
        f"s{i}": random_labeled_graph(rng, rng.randint(4, 7), extra_edges=2)
        for i in range(count)
    }


def oracle_pairs(mirrors: dict, queries: dict) -> set:
    return {
        (stream_id, query_id)
        for stream_id, mirror in mirrors.items()
        for query_id, query in queries.items()
        if nx_subgraph_iso(query, mirror)
    }


def massacre(sharded: ShardedMonitor) -> None:
    for pid in sharded.worker_pids().values():
        os.kill(pid, signal.SIGKILL)
    time.sleep(0.05)


class TestCrashAtomicity:
    def test_registration_survives_worker_massacre(self):
        """SIGKILL the whole pool the instant ``register_query``
        returns: journal replay must land the query on every shard —
        fully present, answered from the current stream state."""
        rng = random.Random(4001)
        queries = small_queries(rng)
        mirrors = small_mirrors(rng)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, mirror in mirrors.items():
                sharded.add_stream(stream_id, mirror)
            fresh = random_query(rng)
            queries["late"] = fresh
            sharded.register_query("late", fresh)
            massacre(sharded)
            reported = sharded.matches()
            assert sharded.recovery_log.recoveries >= 2
            assert reported >= oracle_pairs(mirrors, queries)
            reference = StreamMonitor(queries, method="dsc")
            for stream_id, mirror in mirrors.items():
                reference.add_stream(stream_id, mirror)
            assert reported == reference.matches()

    def test_deregistration_survives_worker_massacre(self):
        """The mirror-image crash: a deregistered query must stay gone
        after journal replay — fully absent, on every shard."""
        rng = random.Random(4002)
        queries = small_queries(rng)
        mirrors = small_mirrors(rng)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, mirror in mirrors.items():
                sharded.add_stream(stream_id, mirror)
            victim = sorted(queries)[0]
            sharded.deregister_query(victim)
            del queries[victim]
            massacre(sharded)
            reported = sharded.matches()
            assert all(query_id != victim for _, query_id in reported)
            assert victim not in sharded.query_ids()
            reference = StreamMonitor(queries, method="dsc")
            for stream_id, mirror in mirrors.items():
                reference.add_stream(stream_id, mirror)
            assert reported == reference.matches()

    def test_unregistered_query_stays_fully_absent(self):
        """A crash *before* any registration was submitted must leave
        no trace of the query — and a later registration of the same id
        succeeds exactly once."""
        rng = random.Random(4003)
        queries = small_queries(rng)
        mirrors = small_mirrors(rng)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, mirror in mirrors.items():
                sharded.add_stream(stream_id, mirror)
            massacre(sharded)
            assert "late" not in sharded.query_ids()
            late = random_query(rng)
            sharded.register_query("late", late)
            with pytest.raises(ValueError):
                sharded.register_query("late", late)
            queries["late"] = late
            assert sharded.matches() >= oracle_pairs(mirrors, queries)


@needs_shm_dir
class TestShmLeakFreedom:
    def test_churn_cycles_do_not_accumulate_segments(self):
        """Register/deregister cycles on the shared-memory plane: the
        retired queries' rows are tombstoned and reallocated stores
        released, so the segment census after five cycles equals the
        census after one — and close() unlinks everything."""
        rng = random.Random(4004)
        queries = small_queries(rng)
        mirrors = small_mirrors(rng)
        sharded = ShardedMonitor(queries, method="matrix", num_workers=2, shm=True)
        prefix = sharded._shm_base
        try:
            for stream_id, mirror in mirrors.items():
                sharded.add_stream(stream_id, mirror)
            def cycle(tag: str) -> None:
                extra = random_query(rng)
                sharded.register_query(tag, extra)
                sharded.matches()
                sharded.deregister_query(tag)
                sharded.matches()
            cycle("churn0")
            baseline = len(live_segments(prefix))
            for i in range(1, 5):
                cycle(f"churn{i}")
            assert len(live_segments(prefix)) == baseline
            assert sorted(sharded.query_ids()) == sorted(queries)
        finally:
            sharded.close()
        assert live_segments(prefix) == []


class TestFingerprintDedup:
    def test_identical_patterns_share_rows_with_exact_fanout(self):
        """Two queries with identical NPV projections share one group of
        dominance rows (``live_vector_count`` does not double), yet each
        id gets its own verdicts in ``matches()``/``verified_matches()``
        — and retiring one leaves the other exact."""
        rng = random.Random(4005)
        pattern = random_labeled_graph(rng, 4, extra_edges=1)
        monitor = StreamMonitor({"a": pattern}, method="dsc")
        solo_rows = monitor.query_set.live_vector_count()
        monitor.register_query("b", pattern.copy())
        assert monitor.query_set.live_vector_count() == solo_rows
        assert monitor.query_set.num_groups == 1
        mirrors = small_mirrors(rng)
        for stream_id, mirror in mirrors.items():
            monitor.add_stream(stream_id, mirror)
        reported = monitor.matches()
        assert {s for s, q in reported if q == "a"} == {
            s for s, q in reported if q == "b"
        }
        truth = oracle_pairs(mirrors, {"a": pattern, "b": pattern})
        assert monitor.verified_matches() == truth
        monitor.deregister_query("a")
        assert monitor.query_set.num_groups == 1  # group kept alive by "b"
        assert monitor.matches() == {p for p in reported if p[1] == "b"}
        assert monitor.verified_matches() == {p for p in truth if p[1] == "b"}

    def test_group_retires_with_its_last_member(self):
        rng = random.Random(4006)
        pattern = random_labeled_graph(rng, 3, extra_edges=1)
        other = random_labeled_graph(rng, 4, extra_edges=2)
        monitor = StreamMonitor({"a": pattern, "b": pattern.copy(), "c": other})
        groups_before = monitor.query_set.num_groups
        monitor.deregister_query("a")
        assert monitor.query_set.num_groups == groups_before
        monitor.deregister_query("b")
        assert monitor.query_set.num_groups == groups_before - 1
        assert monitor.query_set.live_vector_count() == len(
            monitor.query_set.by_query["c"]
        )

    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline", "matrix"))
    def test_dedup_exact_across_engines(self, method):
        rng = random.Random(4007)
        pattern = random_labeled_graph(rng, 3, extra_edges=1)
        mirrors = small_mirrors(rng, count=3)
        monitor = StreamMonitor({"a": pattern}, method=method)
        for stream_id, mirror in mirrors.items():
            monitor.add_stream(stream_id, mirror)
        monitor.register_query("b", pattern.copy())
        reported = monitor.matches()
        assert reported >= oracle_pairs(mirrors, {"a": pattern, "b": pattern})
        assert {s for s, q in reported if q == "a"} == {
            s for s, q in reported if q == "b"
        }


class TestCheckpointRoundTrip:
    def test_in_process_checkpoint_carries_churned_membership(self, tmp_path):
        """save/load round-trip after churn: the manifest's query list
        *is* the membership — registered queries restore, deregistered
        ones stay gone (RP014 symmetry, no side-channel keys)."""
        rng = random.Random(4008)
        queries = small_queries(rng)
        mirrors = small_mirrors(rng)
        monitor = StreamMonitor(queries, method="dsc")
        for stream_id, mirror in mirrors.items():
            monitor.add_stream(stream_id, mirror)
        late = random_query(rng)
        monitor.register_query("late", late)
        victim = sorted(queries)[0]
        monitor.deregister_query(victim)
        save_monitor(monitor, tmp_path / "snap")
        restored = load_monitor(tmp_path / "snap")
        assert sorted(restored.query_set.queries) == sorted(
            monitor.query_set.queries
        )
        assert victim not in restored.query_set.queries
        assert restored.matches() == monitor.matches()
        assert restored.verified_matches() == monitor.verified_matches()

    def test_sharded_recovery_prefers_checkpointed_membership(self, tmp_path):
        """Churn, checkpoint (journals truncate), churn again, massacre:
        recovery = checkpointed membership + journal replay of the
        post-checkpoint churn — exact on both sides of the snapshot."""
        rng = random.Random(4009)
        queries = small_queries(rng)
        mirrors = small_mirrors(rng)
        with ShardedMonitor(
            queries,
            method="dsc",
            num_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
        ) as sharded:
            for stream_id, mirror in mirrors.items():
                sharded.add_stream(stream_id, mirror)
            before_snapshot = random_query(rng)
            sharded.register_query("early", before_snapshot)
            queries["early"] = before_snapshot
            sharded.checkpoint()
            after_snapshot = random_query(rng)
            sharded.register_query("late", after_snapshot)
            queries["late"] = after_snapshot
            victim = sorted(small_queries(rng))[0]
            sharded.deregister_query(victim)
            del queries[victim]
            massacre(sharded)
            reported = sharded.matches()
            assert sorted(sharded.query_ids()) == sorted(queries)
            reference = StreamMonitor(queries, method="dsc")
            for stream_id, mirror in mirrors.items():
                reference.add_stream(stream_id, mirror)
            assert reported == reference.matches()

    def test_rescale_after_churn_catches_new_shards_up(self):
        """A shard grown after churn is born from the frozen spec; the
        coordinator must replay the net churn into it before it serves."""
        rng = random.Random(4010)
        queries = small_queries(rng)
        mirrors = small_mirrors(rng, count=6)
        with ShardedMonitor(queries, method="dsc", num_workers=2) as sharded:
            for stream_id, mirror in mirrors.items():
                sharded.add_stream(stream_id, mirror)
            late = random_query(rng)
            sharded.register_query("late", late)
            queries["late"] = late
            victim = sorted(queries)[0]
            sharded.deregister_query(victim)
            del queries[victim]
            sharded.rescale(4)
            reported = sharded.matches()
            reference = StreamMonitor(queries, method="dsc")
            for stream_id, mirror in mirrors.items():
                reference.add_stream(stream_id, mirror)
            assert reported == reference.matches()
            assert reported >= oracle_pairs(mirrors, queries)
