"""Shared test fixtures, random-graph helpers and hypothesis strategies.

Seed discipline: every test that draws randomness must do so through a
seeded ``random.Random`` (the ``rng`` fixture, an explicit literal seed,
or a Hypothesis strategy) — never the bare module-level ``random.*``
functions.  The session seed below makes any stragglers reproducible
anyway, and is printed when a test fails so the exact run can be
replayed with ``REPRO_TEST_SEED=<seed> pytest ...``.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import strategies as st

from repro.graph import LabeledGraph

VERTEX_LABELS = ("A", "B", "C")
EDGE_LABELS = ("x", "y")

#: Session-wide RNG seed.  Deterministic by default; override with
#: ``REPRO_TEST_SEED`` to reproduce a specific randomized run.
SESSION_SEED = int(os.environ.get("REPRO_TEST_SEED", "3405691582"))  # 0xCAFEBABE


def pytest_sessionstart(session) -> None:
    """Pin the global RNG so any stray ``random.*`` call is reproducible."""
    random.seed(SESSION_SEED)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Append the session seed to failure reports so randomized runs can
    be replayed exactly (``REPRO_TEST_SEED=<seed> pytest <nodeid>``)."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append(
            ("seed", f"REPRO_TEST_SEED={SESSION_SEED} reproduces this run")
        )


def random_labeled_graph(
    rng: random.Random,
    num_vertices: int,
    extra_edges: int = 0,
    vertex_labels: tuple = VERTEX_LABELS,
    edge_labels: tuple = EDGE_LABELS,
    connected: bool = True,
) -> LabeledGraph:
    """Random graph: spanning tree (if connected) plus extra random edges."""
    graph = LabeledGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(vertex_labels))
    if connected and num_vertices > 1:
        order = list(range(num_vertices))
        rng.shuffle(order)
        for i in range(1, num_vertices):
            graph.add_edge(order[i], rng.choice(order[:i]), rng.choice(edge_labels))
    for _ in range(extra_edges):
        if num_vertices < 2:
            break
        u, v = rng.sample(range(num_vertices), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.choice(edge_labels))
    return graph


def extract_connected_subgraph(
    rng: random.Random, graph: LabeledGraph, num_vertices: int
) -> LabeledGraph:
    """Random connected vertex-induced subgraph with ~num_vertices vertices."""
    start = rng.choice(sorted(graph.vertices(), key=str))
    chosen = {start}
    frontier = [start]
    while len(chosen) < num_vertices and frontier:
        vertex = rng.choice(frontier)
        unvisited = [n for n in graph.neighbors(vertex) if n not in chosen]
        if not unvisited:
            frontier.remove(vertex)
            continue
        neighbor = rng.choice(sorted(unvisited, key=str))
        chosen.add(neighbor)
        frontier.append(neighbor)
    return graph.subgraph(chosen)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def graph_strategy(
    draw,
    min_vertices: int = 1,
    max_vertices: int = 8,
    vertex_labels: tuple = VERTEX_LABELS,
    edge_labels: tuple = EDGE_LABELS,
    connected: bool = True,
) -> LabeledGraph:
    """Hypothesis strategy producing small labeled graphs."""
    num_vertices = draw(st.integers(min_vertices, max_vertices))
    graph = LabeledGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, draw(st.sampled_from(vertex_labels)))
    if num_vertices >= 2:
        if connected:
            for i in range(1, num_vertices):
                anchor = draw(st.integers(0, i - 1))
                graph.add_edge(i, anchor, draw(st.sampled_from(edge_labels)))
        pairs = [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)]
        extra = draw(st.lists(st.sampled_from(pairs), max_size=num_vertices, unique=True))
        for u, v in extra:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, draw(st.sampled_from(edge_labels)))
    return graph
