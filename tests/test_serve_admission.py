"""Admission-control primitives under a fake clock (token bucket and
the full circuit-breaker open → half-open → close/re-open cycle) and
the dead-letter journal (record, replay markers, file round-trip)."""

from __future__ import annotations

import json

import pytest

from repro.serve.admission import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, TokenBucket
from repro.serve.dlq import DeadLetterQueue


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_is_granted_immediately(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0

    def test_empty_bucket_reports_retry_seconds(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.5)

    def test_tokens_accrue_with_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        assert bucket.try_acquire() > 0
        clock.advance(0.5)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)  # a long idle period banks at most `burst`
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        for _ in range(100):
            assert bucket.try_acquire() == 0.0

    def test_positive_rate_requires_positive_burst(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)

    def test_clock_going_backwards_is_tolerated(self):
        clock = FakeClock(start=10.0)
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        clock.now = 5.0  # monotonic clocks should not do this, but survive it
        assert bucket.try_acquire() == 0.0


class TestCircuitBreaker:
    def make(self, clock, threshold=10.0, cooldown=1.0, trip_after=2):
        return CircuitBreaker(
            threshold, cooldown=cooldown, trip_after=trip_after, clock=clock
        )

    def test_disabled_breaker_always_allows(self):
        breaker = CircuitBreaker(0.0, clock=FakeClock())
        breaker.observe(1e9)
        assert breaker.allow() == 0.0
        assert breaker.state == CLOSED

    def test_trips_only_after_consecutive_hot_samples(self):
        breaker = self.make(FakeClock(), trip_after=3)
        breaker.observe(50)
        breaker.observe(50)
        assert breaker.state == CLOSED
        breaker.observe(2)  # a cool sample resets the count
        breaker.observe(50)
        breaker.observe(50)
        assert breaker.state == CLOSED
        breaker.observe(50)
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_breaker_reports_remaining_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock, cooldown=2.0)
        breaker.observe(50)
        breaker.observe(50)
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert breaker.allow() == pytest.approx(1.5)
        assert breaker.state == OPEN

    def test_full_cycle_open_half_open_close(self):
        clock = FakeClock()
        breaker = self.make(clock, cooldown=1.0)
        breaker.observe(50)
        breaker.observe(50)
        assert breaker.state == OPEN
        clock.advance(1.1)
        assert breaker.allow() == 0.0  # cooldown elapsed: trial admitted
        assert breaker.state == HALF_OPEN
        breaker.observe(1)  # load recovered
        assert breaker.state == CLOSED
        assert breaker.allow() == 0.0

    def test_half_open_reopens_on_hot_sample(self):
        clock = FakeClock()
        breaker = self.make(clock, cooldown=1.0)
        breaker.observe(50)
        breaker.observe(50)
        clock.advance(1.1)
        assert breaker.allow() == 0.0
        assert breaker.state == HALF_OPEN
        breaker.observe(50)  # still hot: one sample re-opens
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert breaker.allow() > 0

    def test_state_codes_match_gauge_encoding(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.state_code() == 0
        breaker.observe(50)
        breaker.observe(50)
        assert breaker.state_code() == 2
        clock.advance(1.1)
        breaker.allow()
        assert breaker.state_code() == 1

    def test_trip_after_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(1.0, trip_after=0)


CHANGES = [
    {"op": "ins", "u": 1, "v": 2, "edge_label": "x", "u_label": "A", "v_label": "B"}
]


class TestDeadLetterQueue:
    def test_memory_mode_records_and_lists(self):
        dlq = DeadLetterQueue(clock=FakeClock(5.0))
        dlq_id = dlq.record(
            session=1, stream="s0", changes=CHANGES, error="GraphError: dup"
        )
        assert dlq_id == 1
        assert len(dlq) == 1
        entry = dlq.get(dlq_id)
        assert entry.stream == "s0"
        assert entry.created == 5.0
        assert entry.changes == CHANGES
        assert not entry.replayed

    def test_ids_are_monotonic(self):
        dlq = DeadLetterQueue()
        first = dlq.record(session=1, stream="a", changes=[], error="e")
        second = dlq.record(session=1, stream="b", changes=[], error="e")
        assert second == first + 1

    def test_file_backed_journal_round_trips(self, tmp_path):
        dlq = DeadLetterQueue(tmp_path)
        dlq.record(
            session=3,
            stream=7,
            changes=CHANGES,
            error="ValueError: boom",
            trace_id="t-123",
        )
        assert (tmp_path / DeadLetterQueue.FILENAME).exists()

        reloaded = DeadLetterQueue(tmp_path)
        assert len(reloaded) == 1
        entry = reloaded.get(1)
        assert entry.stream == 7  # int stream id survives the journal
        assert entry.trace_id == "t-123"
        assert entry.changes == CHANGES

    def test_replay_marker_is_append_only_and_folds_on_load(self, tmp_path):
        dlq = DeadLetterQueue(tmp_path)
        dlq.record(session=1, stream="s", changes=CHANGES, error="e")
        dlq.record(session=1, stream="s", changes=CHANGES, error="e")
        dlq.mark_replayed(1)

        lines = (tmp_path / DeadLetterQueue.FILENAME).read_text().splitlines()
        assert len(lines) == 3  # two entries + one marker, nothing rewritten
        assert json.loads(lines[-1]) == {"replayed_id": 1}

        reloaded = DeadLetterQueue(tmp_path)
        assert reloaded.get(1).replayed
        assert not reloaded.get(2).replayed
        assert [e.dlq_id for e in reloaded.entries(include_replayed=False)] == [2]
        assert [e.dlq_id for e in reloaded.entries()] == [1, 2]

    def test_ids_keep_incrementing_across_reload(self, tmp_path):
        dlq = DeadLetterQueue(tmp_path)
        dlq.record(session=1, stream="s", changes=[], error="e")
        reloaded = DeadLetterQueue(tmp_path)
        assert reloaded.record(session=1, stream="s", changes=[], error="e") == 2

    def test_mark_replayed_unknown_id_raises(self):
        with pytest.raises(KeyError):
            DeadLetterQueue().mark_replayed(99)
