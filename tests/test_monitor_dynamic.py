"""Tests for dynamic query sets and the match-event API (extensions the
paper lists as future work)."""

import random

import pytest

from repro import EdgeChange, LabeledGraph, StreamMonitor
from repro.core.monitor import MatchEvent

from .conftest import random_labeled_graph


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, "-")
    return graph


class TestDynamicQueries:
    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline"))
    def test_add_query_sees_existing_streams(self, method):
        monitor = StreamMonitor({"ab": chain(["A", "B"])}, method=method)
        monitor.add_stream("s", chain(["A", "B", "C"]))
        monitor.add_query("bc", chain(["B", "C"]))
        assert monitor.matches() == {("s", "ab"), ("s", "bc")}
        assert sorted(monitor.query_ids()) == ["ab", "bc"]

    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline"))
    def test_added_query_tracks_future_updates(self, method):
        monitor = StreamMonitor({"ab": chain(["A", "B"])}, method=method)
        monitor.add_stream("s")
        monitor.add_query("cd", chain(["C", "D"]))
        monitor.apply("s", EdgeChange.insert(0, 1, "-", "C", "D"))
        assert monitor.matches() == {("s", "cd")}
        monitor.apply("s", EdgeChange.delete(0, 1))
        assert monitor.matches() == set()

    def test_remove_query(self):
        monitor = StreamMonitor(
            {"ab": chain(["A", "B"]), "bc": chain(["B", "C"])}, method="dsc"
        )
        monitor.add_stream("s", chain(["A", "B", "C"]))
        monitor.remove_query("ab")
        assert monitor.matches() == {("s", "bc")}
        assert monitor.query_ids() == ["bc"]

    def test_duplicate_query_rejected(self):
        monitor = StreamMonitor({"ab": chain(["A", "B"])})
        with pytest.raises(ValueError):
            monitor.add_query("ab", chain(["A", "B"]))

    def test_remove_missing_query_rejected(self):
        monitor = StreamMonitor({"ab": chain(["A", "B"])})
        with pytest.raises(KeyError):
            monitor.remove_query("nope")

    def test_rebuild_preserves_engine_agreement(self):
        rng = random.Random(606)
        source = random_labeled_graph(rng, 7, extra_edges=3)
        monitors = {
            m: StreamMonitor({"q0": chain(["A", "B"])}, method=m)
            for m in ("nl", "dsc", "skyline")
        }
        for monitor in monitors.values():
            monitor.add_stream(0, source)
            monitor.add_query("q1", chain(["B", "C", "A"]))
            monitor.remove_query("q0")
        results = {frozenset(m.matches()) for m in monitors.values()}
        assert len(results) == 1


class TestPollEvents:
    def test_appear_and_vanish(self):
        monitor = StreamMonitor({"ab": chain(["A", "B"])})
        monitor.add_stream("s")
        assert monitor.events() == []
        monitor.apply("s", EdgeChange.insert(0, 1, "-", "A", "B"))
        events = monitor.events()
        assert events == [MatchEvent("appeared", "s", "ab")]
        assert monitor.events() == []  # no change, no events
        monitor.apply("s", EdgeChange.delete(0, 1))
        assert monitor.events() == [MatchEvent("vanished", "s", "ab")]

    def test_stream_removal_clears_state(self):
        monitor = StreamMonitor({"ab": chain(["A", "B"])})
        monitor.add_stream("s", chain(["A", "B"]))
        monitor.events()
        monitor.remove_stream("s")
        # the pair is gone silently: no stale "vanished" event for a
        # stream the caller explicitly removed
        assert monitor.events() == []

    def test_query_removal_clears_state(self):
        monitor = StreamMonitor({"ab": chain(["A", "B"])})
        monitor.add_stream("s", chain(["A", "B"]))
        monitor.events()
        monitor.remove_query("ab")
        assert monitor.events() == []

    def test_added_query_emits_appearance(self):
        monitor = StreamMonitor({"ab": chain(["A", "B"])})
        monitor.add_stream("s", chain(["A", "B", "C"]))
        monitor.events()
        monitor.add_query("bc", chain(["B", "C"]))
        assert monitor.events() == [MatchEvent("appeared", "s", "bc")]

    def test_events_sorted_deterministically(self):
        monitor = StreamMonitor(
            {"ab": chain(["A", "B"]), "bc": chain(["B", "C"])}
        )
        monitor.add_stream("s2")
        monitor.add_stream("s1")
        monitor.apply("s1", EdgeChange.insert(0, 1, "-", "A", "B"))
        monitor.apply("s2", EdgeChange.insert(0, 1, "-", "B", "C"))
        events = monitor.events()
        assert [(e.stream_id, e.query_id) for e in events] == [("s1", "ab"), ("s2", "bc")]
