"""End-to-end tests for the StreamMonitor public API."""

import random

import pytest

from repro import EdgeChange, GraphChangeOperation, LabeledGraph, StreamMonitor
from repro.isomorphism import SubgraphMatcher

from .conftest import extract_connected_subgraph, random_labeled_graph


def chain(labels):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1, "-")
    return graph


def make_monitor(method="dsc"):
    return StreamMonitor(
        {"ab": chain(["A", "B"]), "abc": chain(["A", "B", "C"])}, method=method
    )


class TestLifecycle:
    def test_add_remove_stream(self):
        monitor = make_monitor()
        monitor.add_stream("s")
        assert monitor.stream_ids() == ["s"]
        monitor.remove_stream("s")
        assert monitor.stream_ids() == []
        assert monitor.matches() == set()

    def test_duplicate_stream_rejected(self):
        monitor = make_monitor()
        monitor.add_stream("s")
        with pytest.raises(ValueError):
            monitor.add_stream("s")

    def test_add_stream_with_initial_graph(self):
        monitor = make_monitor()
        monitor.add_stream("s", chain(["A", "B", "C"]))
        assert monitor.matches() == {("s", "ab"), ("s", "abc")}

    def test_graph_accessor(self):
        monitor = make_monitor()
        monitor.add_stream("s", chain(["A", "B"]))
        assert monitor.graph("s").num_edges == 1


class TestUpdates:
    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline", "matrix"))
    def test_single_change_and_batch(self, method):
        monitor = make_monitor(method)
        monitor.add_stream("s")
        monitor.apply("s", EdgeChange.insert(0, 1, "-", "A", "B"))
        assert monitor.matches() == {("s", "ab")}
        monitor.apply(
            "s", GraphChangeOperation([EdgeChange.insert(1, 2, "-", v_label="C")])
        )
        assert monitor.matches() == {("s", "ab"), ("s", "abc")}
        monitor.apply("s", EdgeChange.delete(0, 1))
        assert monitor.matches() == set()

    def test_apply_many(self):
        monitor = make_monitor()
        monitor.add_stream("x")
        monitor.add_stream("y")
        monitor.apply_many(
            {
                "x": GraphChangeOperation([EdgeChange.insert(0, 1, "-", "A", "B")]),
                "y": GraphChangeOperation([EdgeChange.insert(0, 1, "-", "B", "C")]),
            }
        )
        assert monitor.matches() == {("x", "ab")}

    def test_apply_many_accepts_single_edge_changes(self):
        """`apply_many` takes the same per-stream union `apply` does:
        whole batches and bare EdgeChange values can be mixed."""
        monitor = make_monitor()
        monitor.add_stream("x")
        monitor.add_stream("y")
        monitor.apply_many(
            {
                "x": EdgeChange.insert(0, 1, "-", "A", "B"),
                "y": GraphChangeOperation([EdgeChange.insert(0, 1, "-", "B", "C")]),
            }
        )
        assert monitor.matches() == {("x", "ab")}
        monitor.apply_many({"x": EdgeChange.delete(0, 1)})
        assert monitor.matches() == set()

    def test_stats_tree_nodes_o1_counter(self):
        """stats() must report the running per-stream tree-node counter,
        matching an explicit recount of the node-index buckets."""
        monitor = make_monitor()
        monitor.add_stream("s", chain(["A", "B", "C"]))
        monitor.apply("s", EdgeChange.insert(0, 2, "-"))
        stats = monitor.stats()
        index = monitor._indexes["s"]
        recount = sum(len(bucket) for bucket in index.node_index.values())
        assert stats["streams"]["s"]["tree_nodes"] == recount > 0

    def test_is_match(self):
        monitor = make_monitor()
        monitor.add_stream("s", chain(["A", "B"]))
        assert monitor.is_match("s", "ab")
        assert not monitor.is_match("s", "abc")


class TestVerification:
    def test_verified_subset_of_matches(self):
        monitor = make_monitor()
        monitor.add_stream("s", chain(["A", "B", "C"]))
        assert monitor.verified_matches() <= monitor.matches()

    def test_verified_specific_pairs(self):
        monitor = make_monitor()
        monitor.add_stream("s", chain(["A", "B"]))
        assert monitor.verified_matches({("s", "ab")}) == {("s", "ab")}
        assert monitor.verified_matches({("s", "abc")}) == set()

    @pytest.mark.parametrize("method", ("nl", "dsc", "skyline", "matrix"))
    def test_no_false_negatives_random(self, method):
        rng = random.Random(31337)
        for trial in range(5):
            target = random_labeled_graph(rng, rng.randint(5, 8), extra_edges=3)
            queries = {
                f"q{i}": extract_connected_subgraph(rng, target, rng.randint(2, 4))
                for i in range(3)
            }
            monitor = StreamMonitor(queries, method=method)
            monitor.add_stream(0, target)
            filtered = monitor.matches()
            truth = {
                (0, query_id)
                for query_id, query in queries.items()
                if SubgraphMatcher(target).is_subgraph(query)
            }
            assert truth <= filtered
            assert monitor.verified_matches() == truth


class TestMethodEquivalence:
    def test_methods_identical_over_stream(self):
        rng = random.Random(4000)
        queries = {
            f"q{i}": random_labeled_graph(rng, rng.randint(2, 4), extra_edges=1)
            for i in range(3)
        }
        monitors = {
            m: StreamMonitor(queries, method=m)
            for m in ("nl", "dsc", "skyline", "matrix")
        }
        for monitor in monitors.values():
            monitor.add_stream(0)
        timeline = []
        mirror = LabeledGraph()
        for _ in range(60):
            vertices = list(mirror.vertices())
            edges = list(mirror.edges())
            if edges and rng.random() < 0.4:
                u, v, _ = rng.choice(edges)
                timeline.append(EdgeChange.delete(u, v))
            else:
                new_id = max([v for v in vertices if isinstance(v, int)], default=-1) + 1
                if vertices and rng.random() < 0.6 and len(vertices) >= 2:
                    u, v = rng.sample(vertices, 2)
                    if mirror.has_edge(u, v):
                        continue
                    timeline.append(EdgeChange.insert(u, v, "-"))
                elif vertices:
                    timeline.append(
                        EdgeChange.insert(
                            rng.choice(vertices), new_id, "-", None, rng.choice("ABC")
                        )
                    )
                else:
                    timeline.append(EdgeChange.insert(0, 1, "-", "A", "B"))
            from repro.graph import apply_change

            apply_change(mirror, timeline[-1])
            results = set()
            for name, monitor in monitors.items():
                monitor.apply(0, timeline[-1])
                results.add(frozenset(monitor.matches()))
            assert len(results) == 1  # all engines agree at every step
