"""Tests for the plain-text rendering helpers."""

from repro.graph import LabeledGraph
from repro.nnt import build_nnt, project_graph
from repro.render import format_graph, format_npv, format_tree


def demo_graph() -> LabeledGraph:
    return LabeledGraph.from_vertices_and_edges(
        [(1, "A"), (2, "B"), (3, "C")],
        [(1, 2, "x"), (2, 3, "y"), (1, 3, "z")],
    )


class TestFormatGraph:
    def test_header(self):
        text = format_graph(demo_graph(), "demo")
        assert text.startswith("graph 'demo': 3 vertices, 3 edges")

    def test_anonymous_header(self):
        assert format_graph(LabeledGraph()).startswith("graph: 0 vertices")

    def test_every_vertex_listed(self):
        text = format_graph(demo_graph())
        for vertex, label in [(1, "A"), (2, "B"), (3, "C")]:
            assert f"{vertex}[{label}]" in text

    def test_edge_labels_shown(self):
        text = format_graph(demo_graph())
        assert "2[B](x)" in text
        assert "3[C](z)" in text

    def test_deterministic(self):
        assert format_graph(demo_graph()) == format_graph(demo_graph())


class TestFormatTree:
    def test_structure(self):
        graph = demo_graph()
        text = format_tree(build_nnt(graph, 1, 2), graph.vertex_label)
        assert text.splitlines()[0] == "NNT(1) depth<=2"
        assert "├─(x)─ 2[B]" in text
        assert "└─(z)─ 3[C]" in text

    def test_singleton_tree(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        text = format_tree(build_nnt(graph, 0, 3), graph.vertex_label)
        assert text.splitlines() == ["NNT(0) depth<=3", "0[A]"]


class TestFormatNpv:
    def test_empty(self):
        assert format_npv({}) == "{}"

    def test_sorted_entries(self):
        graph = demo_graph()
        text = format_npv(project_graph(graph, 2)[1])
        assert text.startswith("{(1,A,B):1")
        assert text.endswith("}")
